// nova-lint self-tests: every rule is run in-process over in-memory
// fixture snippets — a seeded violation it must detect, a clean variant
// it must stay silent on, and a suppressed variant it must count as
// suppressed — plus the comment/string blanking machinery, the project
// model, and the JSON report shape.
#include "tools/nova_lint/lint.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "tools/nova_lint/model.h"
#include "tools/nova_lint/rule.h"
#include "tools/nova_lint/source.h"

namespace nova::lint {
namespace {

// Declarations every fixture set shares: makes Status/Outcome APIs
// must-check and defines the enums the switch rule needs to know.
constexpr const char* kHeaderPath = "src/sim/fixture.h";
constexpr const char* kHeader = R"cc(
enum class Status : int { kSuccess, kNoMem, kDenied };
enum class Outcome : int { kFilled, kGuestFault };
enum class Kind : int { kA, kB };
Status Write(int x);
Outcome Resolve(int x);
[[nodiscard]] bool TryCharge(int frames);
)cc";

// Runs all rules over the header plus `files`, returning the result.
LintResult RunOn(const std::vector<std::pair<std::string, std::string>>& files) {
  std::vector<SourceFile> sources;
  sources.emplace_back(kHeaderPath, kHeader);
  for (const auto& [path, text] : files) {
    sources.emplace_back(path, text);
  }
  return RunLint(sources, AllRules());
}

int CountRule(const LintResult& r, const std::string& rule) {
  int n = 0;
  for (const Finding& f : r.findings) n += (f.rule == rule) ? 1 : 0;
  return n;
}

// --- unchecked-status ----------------------------------------------------

TEST(UncheckedStatusRule, FlagsDiscardedStatusCall) {
  const auto r = RunOn({{"src/hv/a.cc", R"cc(
void F() {
  Write(1);
}
)cc"}});
  EXPECT_EQ(CountRule(r, "unchecked-status"), 1);
}

TEST(UncheckedStatusRule, FlagsDiscardedMemberChainCall) {
  const auto r = RunOn({{"src/hv/a.cc", R"cc(
void F(M& m) {
  m.mem().Write(1);
}
)cc"}});
  EXPECT_EQ(CountRule(r, "unchecked-status"), 1);
}

TEST(UncheckedStatusRule, SilentWhenConsumedOrVoided) {
  const auto r = RunOn({{"src/hv/a.cc", R"cc(
Status G();
Status F(M& m) {
  Status s = Write(1);
  if (Write(2) == Status::kSuccess) { }
  (void)m.mem().Write(3);
  (void)Write(4);
  return x ? Write(5) : G();
}
)cc"}});
  EXPECT_EQ(CountRule(r, "unchecked-status"), 0);
}

TEST(UncheckedStatusRule, FlagsUnbracedControlledStatement) {
  const auto r = RunOn({{"src/hv/a.cc", R"cc(
void F(bool c) {
  if (c) Write(1);
}
)cc"}});
  EXPECT_EQ(CountRule(r, "unchecked-status"), 1);
}

TEST(UncheckedStatusRule, HonorsNodiscardDeclarations) {
  const auto r = RunOn({{"src/hv/a.cc", R"cc(
void F() {
  TryCharge(4);
}
)cc"}});
  // One unchecked-status finding; TryCharge alone must not trip the
  // quota-symmetry pair check (that needs a charge/credit API pair).
  EXPECT_EQ(CountRule(r, "unchecked-status"), 1);
}

TEST(UncheckedStatusRule, LineSuppressionCounts) {
  const auto r = RunOn({{"src/hv/a.cc", R"cc(
void F() {
  Write(1);  // nova-lint: allow(unchecked-status)
}
)cc"}});
  EXPECT_EQ(CountRule(r, "unchecked-status"), 0);
  EXPECT_EQ(r.suppressed, 1);
}

// --- quota-symmetry ------------------------------------------------------

TEST(QuotaSymmetryRule, FlagsChargeWithoutCredit) {
  const auto r = RunOn({{"src/hv/q.cc", R"cc(
void Grow(P* pd) {
  (void)pool->AllocFrameFor(pd);
}
)cc"}});
  EXPECT_EQ(CountRule(r, "quota-symmetry"), 1);
}

TEST(QuotaSymmetryRule, SilentWhenPaired) {
  const auto r = RunOn({{"src/hv/q.cc", R"cc(
void Grow(P* pd) {
  (void)pool->AllocFrameFor(pd);
}
void Shrink(P* pd, unsigned f) {
  pool->FreeFrameFor(pd, f);
}
)cc"}});
  EXPECT_EQ(CountRule(r, "quota-symmetry"), 0);
}

TEST(QuotaSymmetryRule, IgnoresDeclarationsAndTests) {
  // A declaration is not a call; test files are out of scope entirely.
  const auto r = RunOn({{"src/hv/q.h", R"cc(
struct Pool {
  virtual unsigned AllocFrameFor(P* pd) = 0;
};
)cc"},
                        {"tests/hv/q_test.cc", R"cc(
void T() { (void)pool->AllocFrameFor(pd); }
)cc"}});
  EXPECT_EQ(CountRule(r, "quota-symmetry"), 0);
}

// --- raw-counter ---------------------------------------------------------

TEST(RawCounterRule, FlagsBareBumpInHv) {
  const auto r = RunOn({{"src/hv/c.cc", R"cc(
void F() {
  x = 1;
  y = 2;
  ctr_.hlt.Add();
  z = 3;
}
)cc"}});
  EXPECT_EQ(CountRule(r, "raw-counter"), 1);
}

TEST(RawCounterRule, FlagsStringKeyedLookupEvenWithCoEmission) {
  const auto r = RunOn({{"src/hv/c.cc", R"cc(
void F() {
  stats_.counter("ipc-calls").Add();
  tracer_->InstantAt(now, cat, name, tid);
}
)cc"}});
  EXPECT_EQ(CountRule(r, "raw-counter"), 1);
}

TEST(RawCounterRule, SilentWithAdjacentCoEmission) {
  const auto r = RunOn({{"src/hv/c.cc", R"cc(
void F() {
  flushes_.Add();
  Mark(trc_.flush);
}
)cc"}});
  EXPECT_EQ(CountRule(r, "raw-counter"), 0);
}

TEST(RawCounterRule, OutOfScopeOutsideHv) {
  const auto r = RunOn({{"src/hw/c.cc", R"cc(
void F() {
  x = 1;
  y = 2;
  retries_.Add();
  z = 3;
}
)cc"}});
  EXPECT_EQ(CountRule(r, "raw-counter"), 0);
}

// --- raw-span ------------------------------------------------------------

TEST(RawSpanRule, FlagsManualBeginAndEnd) {
  const auto r = RunOn({{"src/hv/s.cc", R"cc(
void F() {
  tracer_->BeginAt(now, cat, name, tid);
  Work();
  tracer_->EndAt(now, cat, name, tid);
}
)cc"}});
  EXPECT_EQ(CountRule(r, "raw-span"), 2);
}

TEST(RawSpanRule, SilentOnScopedSpanAndDeclarations) {
  const auto r = RunOn({{"src/hv/s.cc", R"cc(
void BeginAt(int a, int b);
void F() {
  sim::ScopedSpan span(tracer_, cat, name, tid, clock);
  Work();
}
)cc"}});
  EXPECT_EQ(CountRule(r, "raw-span"), 0);
}

TEST(RawSpanRule, FileSuppressionCounts) {
  const auto r = RunOn({{"src/hv/s.cc", R"cc(
// nova-lint: allow-file(raw-span)
void F() {
  tracer_->BeginAt(now, cat, name, tid);
  tracer_->EndAt(now, cat, name, tid);
}
)cc"}});
  EXPECT_EQ(CountRule(r, "raw-span"), 0);
  EXPECT_EQ(r.suppressed, 2);
}

// --- layering ------------------------------------------------------------

TEST(LayeringRule, FlagsUpwardInclude) {
  const auto r = RunOn({{"src/hw/dev.h", R"cc(
#include "src/hv/kernel.h"
)cc"}});
  EXPECT_EQ(CountRule(r, "layering"), 1);
}

TEST(LayeringRule, AllowsDownwardSameRankAndConsumers) {
  const auto r = RunOn({{"src/hv/k.h", R"cc(
#include "src/sim/trace.h"
#include "src/hw/machine.h"
#include "src/hv/objects.h"
)cc"},
                        {"src/root/r.h", R"cc(
#include "src/vmm/vmm.h"
)cc"},
                        {"tests/hv/t.cc", R"cc(
#include "src/root/root_pm.h"
)cc"}});
  EXPECT_EQ(CountRule(r, "layering"), 0);
}

// --- enum-switch ---------------------------------------------------------

TEST(EnumSwitchRule, FlagsPartialSwitch) {
  const auto r = RunOn({{"src/hv/e.cc", R"cc(
int F(Status s) {
  switch (s) {
    case Status::kSuccess:
      return 0;
    default:
      return 1;
  }
}
)cc"}});
  EXPECT_EQ(CountRule(r, "enum-switch"), 1);
}

TEST(EnumSwitchRule, SilentWhenExhaustive) {
  const auto r = RunOn({{"src/hv/e.cc", R"cc(
int F(Status s) {
  switch (s) {
    case Status::kSuccess:
      return 0;
    case Status::kNoMem:
    case Status::kDenied:
      return 1;
  }
  return 2;
}
)cc"}});
  EXPECT_EQ(CountRule(r, "enum-switch"), 0);
}

TEST(EnumSwitchRule, ResolvesCollidingShortNamesByCaseLabels) {
  // `Kind` here is NOT the fixture-header Kind: its labels fit no known
  // definition fully... but kA does. The rule must only attribute the
  // switch to the header's Kind when every observed label fits it, and
  // then report its real gaps.
  const auto r = RunOn({{"src/hv/e.cc", R"cc(
int F(Kind k) {
  switch (k) {
    case Kind::kA:
      return 0;
    case Kind::kB:
      return 1;
  }
  return 2;
}
)cc"}});
  EXPECT_EQ(CountRule(r, "enum-switch"), 0);
}

TEST(EnumSwitchRule, SuppressibleOnTheSwitchLine) {
  const auto r = RunOn({{"src/hv/e.cc", R"cc(
int F(Status s) {
  switch (s) {  // nova-lint: allow(enum-switch)
    case Status::kSuccess:
      return 0;
    default:
      return 1;
  }
}
)cc"}});
  EXPECT_EQ(CountRule(r, "enum-switch"), 0);
  EXPECT_EQ(r.suppressed, 1);
}

// --- unchecked-downcast --------------------------------------------------

TEST(UncheckedDowncastRule, FlagsImmediateDeref) {
  const auto r = RunOn({{"src/hv/d.cc", R"cc(
void F(Cap c) {
  RefAs<Pd>(c, ObjType::kPd)->MarkDead();
}
)cc"}});
  EXPECT_EQ(CountRule(r, "unchecked-downcast"), 1);
}

TEST(UncheckedDowncastRule, FlagsUnguardedBoundDeref) {
  const auto r = RunOn({{"src/hv/d.cc", R"cc(
void F(Cap c) {
  auto pd = RefAs<Pd>(c, ObjType::kPd);
  pd->MarkDead();
}
)cc"}});
  EXPECT_EQ(CountRule(r, "unchecked-downcast"), 1);
}

TEST(UncheckedDowncastRule, SilentWhenGuardedOrReturned) {
  const auto r = RunOn({{"src/hv/d.cc", R"cc(
Ref F(Cap c) {
  auto pd = RefAs<Pd>(c, ObjType::kPd);
  if (pd == nullptr) {
    return nullptr;
  }
  pd->MarkDead();
  return RefAs<Pd>(c, ObjType::kPd);
}
)cc"}});
  EXPECT_EQ(CountRule(r, "unchecked-downcast"), 0);
}

// --- per-cpu-state -------------------------------------------------------

TEST(PerCpuStateRule, FlagsAccessWithoutCoreParameter) {
  const auto r = RunOn({{"src/hv/p.cc", R"cc(
void Hypervisor::Tick() {
  cpu_state(0).Enqueue(nullptr);
}
bool Hypervisor::AnyReady(long deadline) {
  return cpu_states_[0].HasReady();
}
)cc"}});
  EXPECT_EQ(CountRule(r, "per-cpu-state"), 2);
}

TEST(PerCpuStateRule, SilentWithCpuIdOrScEcParameter) {
  const auto r = RunOn({{"src/hv/p.cc", R"cc(
void Hypervisor::Dispatch(unsigned cpu_id) {
  cpu_state(cpu_id).Enqueue(nullptr);
}
void Hypervisor::EnqueueSc(Sc* sc, bool at_head) {
  cpu_state(sc->cpu()).Enqueue(sc, at_head);
}
void Hypervisor::Park(Ec* vcpu) {
  cpu_states_[vcpu->cpu()].ParkHalted(nullptr);
}
)cc"}});
  EXPECT_EQ(CountRule(r, "per-cpu-state"), 0);
}

TEST(PerCpuStateRule, SilentOnDeclarationsAndCtorInitLists) {
  // The class-scope declaration and the accessor signature are not
  // accesses; an init-list constructor body with a cpu param stays clean.
  const auto r = RunOn({{"src/hv/p.h", R"cc(
class Hypervisor {
 public:
  Hypervisor(unsigned boot_cpu) : boot_(boot_cpu) {
    cpu_state(boot_cpu).SetCurrent(nullptr);
  }
 private:
  std::vector<CpuState> cpu_states_;
  unsigned boot_;
};
)cc"}});
  EXPECT_EQ(CountRule(r, "per-cpu-state"), 0);
}

TEST(PerCpuStateRule, MachineWideScanSuppressible) {
  const auto r = RunOn({{"src/hv/p.cc", R"cc(
bool Hypervisor::AnyReady(long deadline) {
  // nova-lint: allow(per-cpu-state)
  return cpu_states_[0].HasReady();
}
)cc"}});
  EXPECT_EQ(CountRule(r, "per-cpu-state"), 0);
  EXPECT_GE(r.suppressed, 1);
}

TEST(PerCpuStateRule, OutOfScopeOutsideHv) {
  const auto r = RunOn({{"src/hw/p.cc", R"cc(
void Tick() {
  cpu_state(0).Enqueue(nullptr);
}
)cc"}});
  EXPECT_EQ(CountRule(r, "per-cpu-state"), 0);
}

// --- snapshot-fields ------------------------------------------------------

TEST(SnapshotFieldsRule, FlagsSaveStateClassWithoutCensus) {
  const auto r = RunOn({{"src/hw/s.h", R"cc(
class Widget {
 public:
  Status SaveState(SnapWriter& w) const;
 private:
  int count_ = 0;
};
)cc"}});
  EXPECT_EQ(CountRule(r, "snapshot-fields"), 1);
}

TEST(SnapshotFieldsRule, FlagsMemberMissingFromCensus) {
  const auto r = RunOn({{"src/hw/s.h", R"cc(
class Widget {
 public:
  Status SaveState(SnapWriter& w) const;
 private:
  // snapshot-x-list(Widget): count_
  int count_ = 0;
  int forgotten_ = 0;
};
)cc"}});
  EXPECT_EQ(CountRule(r, "snapshot-fields"), 1);
}

TEST(SnapshotFieldsRule, FlagsStaleCensusEntry) {
  const auto r = RunOn({{"src/hw/s.h", R"cc(
class Widget {
 public:
  Status SaveState(SnapWriter& w) const;
 private:
  // snapshot-x-list(Widget): count_, renamed_away_
  int count_ = 0;
};
)cc"}});
  EXPECT_EQ(CountRule(r, "snapshot-fields"), 1);
}

TEST(SnapshotFieldsRule, SilentWhenCensusComplete) {
  const auto r = RunOn({{"src/hw/s.h", R"cc(
class Widget {
 public:
  Widget() : tick_(0) { helper_(); }
  Status SaveState(SnapWriter& w) const { w.U64(local_); }
  void Poke() { int scratch_local_ = 0; scratch_local_ = 1; }
 private:
  struct Nested { int depth; };
  // snapshot-x-list(Widget): tick_, local_, buf_, ptr_
  long tick_;
  int local_ = 0;
  int buf_[4] = {};
  long* ptr_ = nullptr;
};
)cc"}});
  EXPECT_EQ(CountRule(r, "snapshot-fields"), 0);
}

TEST(SnapshotFieldsRule, FollowsCommaContinuedCensusLines) {
  const auto r = RunOn({{"src/hw/s.h", R"cc(
class Widget {
 public:
  Status SaveState(SnapWriter& w) const;
 private:
  // snapshot-x-list(Widget): first_, second_,
  //   third_
  //   (trailing prose after the list is ignored)
  int first_ = 0;
  int second_ = 0;
  int third_ = 0;
};
)cc"}});
  EXPECT_EQ(CountRule(r, "snapshot-fields"), 0);
}

TEST(SnapshotFieldsRule, SilentWithoutSaveStateOrUnderscoreMembers) {
  const auto r = RunOn({{"src/hw/s.h", R"cc(
class Passive {
  int count_ = 0;
};
struct Aggregate {
  int count;
  Status SaveState(SnapWriter& w) const;
};
)cc"}});
  EXPECT_EQ(CountRule(r, "snapshot-fields"), 0);
}

TEST(SnapshotFieldsRule, SuppressibleOnTheClassLine) {
  const auto r = RunOn({{"src/hw/s.h", R"cc(
// nova-lint: allow(snapshot-fields)
class Widget {
 public:
  Status SaveState(SnapWriter& w) const;
 private:
  int count_ = 0;
};
)cc"}});
  EXPECT_EQ(CountRule(r, "snapshot-fields"), 0);
  EXPECT_GE(r.suppressed, 1);
}

// --- source views / suppressions -----------------------------------------

TEST(SourceFile, BlanksCommentsStringsAndPreprocessor) {
  SourceFile f("src/hv/x.cc", R"cc(
#include "src/root/above.h"
// Write(1);
const char* s = "Write(2);";
/* Write(3); */
)cc");
  EXPECT_EQ(f.code().find("Write"), std::string::npos);
  // The raw view still carries the include (the layering rule reads it).
  EXPECT_NE(f.RawLine(2).find("src/root"), std::string::npos);
}

TEST(SourceFile, StandaloneAllowCommentCoversNextLine) {
  const auto r = RunOn({{"src/hv/a.cc", R"cc(
void F() {
  // nova-lint: allow(unchecked-status)
  Write(1);
}
)cc"}});
  EXPECT_EQ(CountRule(r, "unchecked-status"), 0);
  EXPECT_EQ(r.suppressed, 1);
}

TEST(SourceFile, SuppressionIsRuleSpecific) {
  const auto r = RunOn({{"src/hv/a.cc", R"cc(
void F() {
  Write(1);  // nova-lint: allow(raw-span)
}
)cc"}});
  EXPECT_EQ(CountRule(r, "unchecked-status"), 1);
  EXPECT_EQ(r.suppressed, 0);
}

// --- model ---------------------------------------------------------------

TEST(ProjectModel, LayerRanksMatchTheLadder) {
  EXPECT_EQ(ProjectModel::LayerRank("sim"), 0);
  EXPECT_EQ(ProjectModel::LayerRank("hw"), 1);
  EXPECT_EQ(ProjectModel::LayerRank("hv"), 2);
  EXPECT_EQ(ProjectModel::LayerRank("root"), 3);
  EXPECT_EQ(ProjectModel::LayerRank("vmm"), 3);
  EXPECT_EQ(ProjectModel::LayerRank("tests"), -1);
  EXPECT_EQ(ProjectModel::LayerOf("src/hv/kernel.h"), "hv");
  EXPECT_EQ(ProjectModel::LayerOf("tests/hv/t.cc"), "");
}

// --- lexer gaps ----------------------------------------------------------

TEST(SourceFile, DigitSeparatorsDoNotOpenCharLiterals) {
  // Before the separator fix the first ' switched the blanker into
  // char-literal state and erased the rest of the line.
  SourceFile f("src/hv/x.cc", "F(4'000'000'000ull);\nWrite(1);\n");
  EXPECT_NE(f.code().find("4'000'000'000ull"), std::string::npos);
  EXPECT_NE(f.code().find("Write"), std::string::npos);
}

TEST(SourceFile, EncodingPrefixedCharLiteralsStillBlank) {
  SourceFile f("src/hv/x.cc", "char c = u8'W'; wchar_t w = L'X';\n");
  EXPECT_EQ(f.code().find('W'), std::string::npos);
  EXPECT_EQ(f.code().find('X'), std::string::npos);
}

TEST(Lexer, DigitSeparatedNumberIsOneToken) {
  SourceFile f("src/hv/x.cc", "const auto k = 4'000'000'000ull;\n");
  const Tokens toks = Lex(f);
  bool found = false;
  for (const Token& t : toks) {
    found |= t.kind == TokKind::kNumber && t.text == "4'000'000'000ull";
  }
  EXPECT_TRUE(found);
}

TEST(SourceFile, PrefixedRawStringsAreBlanked) {
  SourceFile f("src/hv/x.cc",
               "const char* s = uR\"x(Write(1))x\";\nint Keep();\n");
  EXPECT_EQ(f.code().find("Write"), std::string::npos);
  EXPECT_NE(f.code().find("Keep"), std::string::npos);
}

TEST(SourceFile, MultiLineRawStringBodyIsBlanked) {
  SourceFile f("src/hv/x.cc",
               "const char* s = R\"(\n  Write(1);\n)\";\nint Keep();\n");
  EXPECT_EQ(f.code().find("Write"), std::string::npos);
  EXPECT_NE(f.code().find("Keep"), std::string::npos);
}

TEST(SourceFile, MacroContinuationWithTrailingBlanksIsPreprocessor) {
  // The backslash is followed by trailing whitespace: still a
  // continuation, so the macro body must not leak into the code view.
  SourceFile f("src/hv/x.cc",
               "#define CHECK(x) \\ \t\n  Write(x)\nint Keep();\n");
  EXPECT_EQ(f.code().find("Write"), std::string::npos);
  EXPECT_NE(f.code().find("Keep"), std::string::npos);
}

// --- determinism ---------------------------------------------------------

TEST(DeterminismRule, FlagsUnorderedIterationInSimLayers) {
  const auto r = RunOn({{"src/hv/d.cc", R"cc(
class T {
 public:
  void Walk() {
    for (const auto& kv : table_) { (void)kv; }
  }
 private:
  std::unordered_map<int, int> table_;
};
)cc"}});
  EXPECT_EQ(CountRule(r, "determinism"), 1);
}

TEST(DeterminismRule, FlagsExplicitIteratorWalk) {
  const auto r = RunOn({{"src/hw/d.cc", R"cc(
class T {
 public:
  int First() { return table_.begin()->second; }
 private:
  std::unordered_map<int, int> table_;
};
)cc"}});
  EXPECT_EQ(CountRule(r, "determinism"), 1);
}

TEST(DeterminismRule, ResolvesMemberTypeByEnclosingClass) {
  // Two classes declare `entries_`: unordered in A, a vector in B. The
  // walk in B::V must resolve against B's declaration, not A's.
  const auto r = RunOn({
      {"src/sim/a.h", R"cc(
class A {
 public:
  void W();
 private:
  std::unordered_map<int, int> entries_;
};
)cc"},
      {"src/sim/b.cc", R"cc(
class B {
 public:
  void V() {
    for (const int e : entries_) { (void)e; }
  }
 private:
  std::vector<int> entries_;
};
)cc"},
  });
  EXPECT_EQ(CountRule(r, "determinism"), 0);
}

TEST(DeterminismRule, ResolvesCrossTuMethodDefinitions) {
  // A::W is defined out-of-line in a different TU than A's declaration;
  // the Cls:: qualifier must pick up A's unordered member.
  const auto r = RunOn({
      {"src/sim/a.h", R"cc(
class A {
 public:
  void W();
 private:
  std::unordered_map<int, int> entries_;
};
)cc"},
      {"src/sim/a.cc", R"cc(
void A::W() {
  for (const auto& kv : entries_) { (void)kv; }
}
)cc"},
  });
  EXPECT_EQ(CountRule(r, "determinism"), 1);
}

TEST(DeterminismRule, FlagsPointerKeyedContainers) {
  const auto r = RunOn({{"src/hv/p.cc", R"cc(
class C {
 private:
  std::map<Obj*, int> index_;
};
)cc"}});
  EXPECT_EQ(CountRule(r, "determinism"), 1);
}

TEST(DeterminismRule, FlagsWallClockAndRandomness) {
  const auto r = RunOn({{"src/hw/c.cc", R"cc(
void F() {
  auto t = std::chrono::steady_clock::now();
  std::random_device rd;
}
)cc"}});
  EXPECT_EQ(CountRule(r, "determinism"), 2);
}

TEST(DeterminismRule, FlagsPointerCastIntoPayloadSink) {
  const auto r = RunOn({{"src/hv/s.cc", R"cc(
void Save(W& w, Obj* p) {
  w.U64(reinterpret_cast<uintptr_t>(p));
}
)cc"}});
  EXPECT_EQ(CountRule(r, "determinism"), 1);
}

TEST(DeterminismRule, OutOfScopeOutsideSrcAndInRngWrapper) {
  const auto r = RunOn({
      {"tests/hv/c.cc",
       "void F() {\n  auto t = std::chrono::steady_clock::now();\n}\n"},
      {"src/sim/rng.cc", "int F() {\n  return rand();\n}\n"},
  });
  EXPECT_EQ(CountRule(r, "determinism"), 0);
}

TEST(DeterminismRule, SuppressibleWithJustification) {
  const auto r = RunOn({{"src/hv/d.cc", R"cc(
class T {
 public:
  int Count() {
    int n = 0;
    // nova-lint: allow(determinism) -- pure count, order-independent
    for (const auto& kv : table_) { n += kv.second; }
    return n;
  }
 private:
  std::unordered_map<int, int> table_;
};
)cc"}});
  EXPECT_EQ(CountRule(r, "determinism"), 0);
  EXPECT_EQ(r.suppressed, 1);
}

// --- lock-discipline -----------------------------------------------------

constexpr const char* kLockHeaderPath = "src/hv/lk.h";
constexpr const char* kLockHeader = R"cc(
struct KernelLock { int last_cpu; };
class Hv {
 public:
  void Locked(int cpu);
  void Unlocked();
 private:
  void ChargeLock(KernelLock& lock, int cpu);
  // guarded-by(mdb_lock_)
  int mdb_epoch_ = 0;
  KernelLock mdb_lock_;
};
)cc";

TEST(LockDisciplineRule, FlagsTouchWithoutCharge) {
  const auto r = RunOn({
      {kLockHeaderPath, kLockHeader},
      {"src/hv/lk.cc", R"cc(
void Hv::Locked(int cpu) {
  ChargeLock(mdb_lock_, cpu);
  mdb_epoch_ = 1;
}
void Hv::Unlocked() {
  mdb_epoch_ = 2;
}
)cc"},
  });
  ASSERT_EQ(CountRule(r, "lock-discipline"), 1);
  for (const Finding& f : r.findings) {
    if (f.rule != "lock-discipline") continue;
    EXPECT_NE(f.message.find("Hv::Unlocked"), std::string::npos);
    EXPECT_NE(f.message.find("mdb_lock_"), std::string::npos);
  }
}

TEST(LockDisciplineRule, PerCpuOwnerCodeIsExempt) {
  const auto r = RunOn({
      {kLockHeaderPath, kLockHeader},
      {"src/hv/cs.cc", R"cc(
class CpuState {
 public:
  void Touch();
};
void CpuState::Touch() {
  mdb_epoch_ = 3;
}
)cc"},
  });
  EXPECT_EQ(CountRule(r, "lock-discipline"), 0);
}

TEST(LockDisciplineRule, SuppressibleWithJustification) {
  const auto r = RunOn({
      {kLockHeaderPath, kLockHeader},
      {"src/hv/lk.cc", R"cc(
void Hv::Unlocked() {
  // nova-lint: allow(lock-discipline) -- single-core boot path
  mdb_epoch_ = 2;
}
)cc"},
  });
  EXPECT_EQ(CountRule(r, "lock-discipline"), 0);
  EXPECT_EQ(r.suppressed, 1);
}

// --- event-rebind --------------------------------------------------------

TEST(EventRebindRule, FlagsEnqueueWithoutRebinder) {
  const auto r = RunOn({{"src/hw/t.cc", R"cc(
void Arm(sim::EventQueue& q) {
  q.ScheduleAtTagged(5, sim::EventTag{"hw.timer", 0}, Fire);
}
)cc"}});
  ASSERT_EQ(CountRule(r, "event-rebind"), 1);
  for (const Finding& f : r.findings) {
    if (f.rule == "event-rebind") {
      EXPECT_NE(f.message.find("hw.timer"), std::string::npos);
    }
  }
}

TEST(EventRebindRule, PairsEnqueueWithRebinderAcrossTus) {
  const auto r = RunOn({
      {"src/hw/t.cc", R"cc(
void Arm(sim::EventQueue& q) {
  q.ScheduleAtTagged(5, sim::EventTag{"hw.timer", 0}, Fire);
}
)cc"},
      {"src/hw/t_restore.cc", R"cc(
void Attach(sim::EventQueue& q) {
  q.RegisterRebinder("hw.timer", Rebind);
}
)cc"},
  });
  EXPECT_EQ(CountRule(r, "event-rebind"), 0);
}

TEST(EventRebindRule, TracesLocalTagVariables) {
  const auto r = RunOn({{"src/hw/n.cc", R"cc(
void Arm(sim::EventQueue& q) {
  const sim::EventTag tag{"hw.nic", 1};
  q.ScheduleAfterTagged(5, tag, Fire);
}
)cc"}});
  ASSERT_EQ(CountRule(r, "event-rebind"), 1);
  for (const Finding& f : r.findings) {
    if (f.rule == "event-rebind") {
      EXPECT_NE(f.message.find("hw.nic"), std::string::npos);
    }
  }
}

TEST(EventRebindRule, MatchesSymbolicOwnerKeys) {
  const auto r = RunOn({
      {"src/services/d.cc", R"cc(
void Arm(sim::EventQueue& q) {
  q.ScheduleAfterTagged(5, sim::EventTag{kDiskOwner, 1}, Fire);
}
)cc"},
      {"src/services/d_restore.cc", R"cc(
void Attach(sim::EventQueue& q) {
  q.RegisterRebinder(kDiskOwner, Rebind);
}
)cc"},
  });
  EXPECT_EQ(CountRule(r, "event-rebind"), 0);
}

TEST(EventRebindRule, IgnoresUntaggedScheduling) {
  const auto r = RunOn({{"src/hw/t.cc", R"cc(
void Arm(sim::EventQueue& q) {
  q.ScheduleAt(5, Fire);
}
)cc"}});
  EXPECT_EQ(CountRule(r, "event-rebind"), 0);
}

// --- driver: parallelism, roots, baseline --------------------------------

TEST(Driver, ParallelRunMatchesSerialByteForByte) {
  std::vector<SourceFile> files;
  files.emplace_back(kHeaderPath, kHeader);
  for (int i = 0; i < 24; ++i) {
    files.emplace_back("src/hv/f" + std::to_string(i) + ".cc",
                       "void F" + std::to_string(i) + "() {\n"
                       "  Write(1);\n  Write(2);\n}\n");
  }
  const LintResult serial = RunLint(files, AllRules(), 1);
  const LintResult parallel = RunLint(files, AllRules(), 4);
  EXPECT_EQ(FormatText(serial), FormatText(parallel));
  EXPECT_EQ(serial.findings.size(), 48u);
}

TEST(Driver, RootsExcludeRulesByLongestPrefix) {
  std::vector<SourceFile> files;
  files.emplace_back(kHeaderPath, kHeader);
  files.emplace_back("src/hv/a.cc", "void F() {\n  Write(1);\n}\n");
  std::vector<RootSpec> roots;
  roots.push_back({"src", {}});
  roots.push_back({"src/hv", {"unchecked-status"}});
  const LintResult r = RunLint(files, AllRules(), 1, roots);
  EXPECT_EQ(CountRule(r, "unchecked-status"), 0);
  const LintResult all = RunLint(files, AllRules(), 1);
  EXPECT_EQ(CountRule(all, "unchecked-status"), 1);
}

TEST(Driver, BaselineRatchetDropsKnownPairsOnly) {
  LintResult r = RunOn({{"src/hv/a.cc", "void F() {\n  Write(1);\n}\n"},
                        {"src/hv/b.cc", "void G() {\n  Write(1);\n}\n"}});
  ASSERT_EQ(r.findings.size(), 2u);
  const int dropped = ApplyBaseline(
      &r, {"# known debt", "unchecked-status src/hv/a.cc", "", "bogus-line"});
  EXPECT_EQ(dropped, 1);
  EXPECT_EQ(r.baselined, 1);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].file, "src/hv/b.cc");
}

// --- report formats ------------------------------------------------------

TEST(Report, JsonCarriesSchemaFieldsAndEscapes) {
  const auto r = RunOn({{"src/hv/a.cc", "void F() {\n  Write(1);\n}\n"}});
  ASSERT_EQ(r.findings.size(), 1u);
  const std::string json = FormatJson(r);
  EXPECT_NE(json.find("\"findings\":["), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"unchecked-status\""), std::string::npos);
  EXPECT_NE(json.find("\"file\":\"src/hv/a.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":2"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\":0"), std::string::npos);
  EXPECT_NE(json.find("\"baselined\":0"), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\":2"), std::string::npos);
  EXPECT_NE(json.find("\"wall_ms\":"), std::string::npos);
}

TEST(Report, TextFormatIsFileLineRuleMessage) {
  const auto r = RunOn({{"src/hv/a.cc", "void F() {\n  Write(1);\n}\n"}});
  const std::string text = FormatText(r);
  EXPECT_NE(text.find("src/hv/a.cc:2: [unchecked-status]"),
            std::string::npos);
  EXPECT_NE(text.find("1 finding(s)"), std::string::npos);
}

TEST(Report, FindingsAreSortedByFileThenLine) {
  const auto r = RunOn({{"src/hv/b.cc", "void F() {\n  Write(1);\n}\n"},
                        {"src/hv/a.cc",
                         "void G() {\n  Write(1);\n  Write(2);\n}\n"}});
  ASSERT_EQ(r.findings.size(), 3u);
  EXPECT_EQ(r.findings[0].file, "src/hv/a.cc");
  EXPECT_EQ(r.findings[0].line, 2);
  EXPECT_EQ(r.findings[1].file, "src/hv/a.cc");
  EXPECT_EQ(r.findings[1].line, 3);
  EXPECT_EQ(r.findings[2].file, "src/hv/b.cc");
}

}  // namespace
}  // namespace nova::lint
