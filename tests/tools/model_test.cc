// Symbol-index tests for the nova-lint project model: the scope walker's
// function/member extraction, cross-TU call resolution, guarded-by
// annotation parsing, ChargeLock site indexing, and the tagged-enqueue /
// rebinder pairing tables that rule 12 consumes.
#include "tools/nova_lint/model.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tools/nova_lint/scope.h"
#include "tools/nova_lint/source.h"

namespace nova::lint {
namespace {

ProjectModel Build(const std::vector<std::pair<std::string, std::string>>&
                       files) {
  std::vector<SourceFile> sources;
  for (const auto& [path, text] : files) {
    sources.emplace_back(path, text);
  }
  return BuildModel(sources);
}

const MemberDecl* FindMember(const ProjectModel& m, const std::string& cls,
                             const std::string& name) {
  for (const MemberDecl& d : m.members) {
    if (d.cls == cls && d.name == name) return &d;
  }
  return nullptr;
}

// --- scope walker --------------------------------------------------------

TEST(FileScopes, FindsFunctionsMethodsAndClasses) {
  SourceFile f("src/hv/s.cc", R"cc(
int Free(int x) { return x; }
class K {
 public:
  void Inline() { x_ = 1; }
  void OutOfLine();
 private:
  int x_ = 0;
};
void K::OutOfLine() { x_ = 2; }
)cc");
  const Tokens toks = Lex(f);
  const FileScopes scopes = BuildFileScopes(toks);
  ASSERT_EQ(scopes.classes.size(), 1u);
  EXPECT_EQ(scopes.classes[0].name, "K");
  ASSERT_EQ(scopes.functions.size(), 3u);
  bool found_free = false, found_inline = false, found_ool = false;
  for (const FuncScope& fs : scopes.functions) {
    if (fs.name == "Free") {
      found_free = true;
      EXPECT_EQ(fs.qualifier, "");
    }
    if (fs.name == "Inline") {
      found_inline = true;
      EXPECT_EQ(fs.qualifier, "K");  // innermost-class fill-in
    }
    if (fs.name == "OutOfLine") {
      found_ool = true;
      EXPECT_EQ(fs.qualifier, "K");  // Cls:: qualifier
    }
  }
  EXPECT_TRUE(found_free && found_inline && found_ool);
}

TEST(FileScopes, InnermostFunctionMapsTokensToTheirBody) {
  SourceFile f("src/hv/s.cc", "void A() { int a; }\nvoid B() { int b; }\n");
  const Tokens toks = Lex(f);
  const FileScopes scopes = BuildFileScopes(toks);
  ASSERT_EQ(scopes.functions.size(), 2u);
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const int fn = InnermostFunction(scopes, static_cast<int>(i));
    if (toks[i].text == "a") {
      ASSERT_GE(fn, 0);
      EXPECT_EQ(scopes.functions[static_cast<std::size_t>(fn)].name, "A");
    }
    if (toks[i].text == "b") {
      ASSERT_GE(fn, 0);
      EXPECT_EQ(scopes.functions[static_cast<std::size_t>(fn)].name, "B");
    }
  }
}

// --- function index and cross-TU call resolution -------------------------

TEST(ProjectModelIndex, ResolvesCallsAcrossTranslationUnits) {
  const ProjectModel m = Build({
      {"src/hv/callee.cc", "void Helper() { }\n"},
      {"src/hv/caller.cc", "void Driver() {\n  Helper();\n}\n"},
  });
  const FuncDef* driver = nullptr;
  for (const FuncDef& d : m.functions) {
    if (d.name == "Driver") driver = &d;
  }
  ASSERT_NE(driver, nullptr);
  EXPECT_EQ(driver->calls.count("Helper"), 1u);
  // The call site names the callee; FindFunctions locates its TU.
  const auto defs = m.FindFunctions("Helper");
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(defs[0]->file, "src/hv/callee.cc");
}

TEST(ProjectModelIndex, RecordsChargeLockSitesPerFunction) {
  const ProjectModel m = Build({{"src/hv/k.cc", R"cc(
void Hv::Mutate(int cpu) {
  ChargeLock(mdb_lock_, cpu);
  ChargeLock(sched_lock_, cpu);
}
)cc"}});
  const auto defs = m.FindFunctions("Mutate");
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_EQ(defs[0]->qualifier, "Hv");
  EXPECT_EQ(defs[0]->locks.count("mdb_lock_"), 1u);
  EXPECT_EQ(defs[0]->locks.count("sched_lock_"), 1u);
  ASSERT_EQ(m.lock_sites.size(), 2u);
  EXPECT_EQ(m.lock_sites[0].func, "Mutate");
}

// --- guarded-by parsing --------------------------------------------------

TEST(ProjectModelIndex, ParsesGuardedByFromDeclAndCommentLine) {
  const ProjectModel m = Build({{"src/hv/k.h", R"cc(
class Hv {
 private:
  int epoch_ = 0;  // guarded-by(mdb_lock_)
  // guarded-by(sched_lock_)
  int quantum_ = 0;
  int free_ = 0;
};
)cc"}});
  const MemberDecl* epoch = FindMember(m, "Hv", "epoch_");
  ASSERT_NE(epoch, nullptr);
  EXPECT_EQ(epoch->guarded_by, "mdb_lock_");
  const MemberDecl* quantum = FindMember(m, "Hv", "quantum_");
  ASSERT_NE(quantum, nullptr);
  EXPECT_EQ(quantum->guarded_by, "sched_lock_");
  const MemberDecl* free_member = FindMember(m, "Hv", "free_");
  ASSERT_NE(free_member, nullptr);
  EXPECT_EQ(free_member->guarded_by, "");
  ASSERT_EQ(m.GuardedMembers().size(), 2u);
}

TEST(ProjectModelIndex, MemberTypesKeepContainerShape) {
  const ProjectModel m = Build({{"src/hv/k.h", R"cc(
class Hv {
 private:
  std::unordered_map<int, int> table_;
  std::vector<int> list_;
};
)cc"}});
  const MemberDecl* table = FindMember(m, "Hv", "table_");
  ASSERT_NE(table, nullptr);
  EXPECT_NE(table->type.find("unordered_map"), std::string::npos);
  const MemberDecl* list = FindMember(m, "Hv", "list_");
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->type.find("unordered_"), std::string::npos);
}

// --- enqueue / rebinder pairing ------------------------------------------

TEST(ProjectModelIndex, PairsEnqueuesAndRebindersByNormalizedKey) {
  const ProjectModel m = Build({
      {"src/hw/timer.cc", R"cc(
void Timer::Arm(sim::EventQueue& q) {
  q.ScheduleAtTagged(5, sim::EventTag{"hw.timer", 0}, Fire);
}
)cc"},
      {"src/hw/timer_restore.cc", R"cc(
void Timer::Attach(sim::EventQueue& q) {
  q.RegisterRebinder("hw.timer", Rebind);
}
)cc"},
  });
  ASSERT_EQ(m.enqueues.size(), 1u);
  EXPECT_EQ(m.enqueues[0].key, "\"hw.timer\"");
  ASSERT_EQ(m.rebinders.size(), 1u);
  EXPECT_EQ(m.rebinders[0].key, m.enqueues[0].key);
}

TEST(ProjectModelIndex, NormalizesQualifiedSymbolicOwnerKeys) {
  // sim:: / EventQueue:: qualifiers are stripped so the two sides of a
  // pairing compare equal however the call site spells the owner.
  const ProjectModel m = Build({
      {"src/services/disk.cc", R"cc(
void Disk::Arm(sim::EventQueue& q) {
  q.ScheduleAfterTagged(5, sim::EventTag{kDiskOwner, 1}, Fire);
}
)cc"},
      {"src/services/disk_restore.cc", R"cc(
void Disk::Attach(sim::EventQueue& q) {
  q.RegisterRebinder(kDiskOwner, Rebind);
}
)cc"},
  });
  ASSERT_EQ(m.enqueues.size(), 1u);
  ASSERT_EQ(m.rebinders.size(), 1u);
  EXPECT_EQ(m.enqueues[0].key, "kDiskOwner");
  EXPECT_EQ(m.rebinders[0].key, "kDiskOwner");
}

TEST(ProjectModelIndex, DeclarationsAreNotOwnerSites) {
  // The EventQueue API surface itself (no . or -> before the name) must
  // not register as an enqueue or rebinder site.
  const ProjectModel m = Build({{"src/sim/eq.h", R"cc(
class EventQueue {
 public:
  void ScheduleAtTagged(int at, EventTag tag, Fn fn);
  void RegisterRebinder(std::string owner, Rebinder r);
};
)cc"}});
  EXPECT_EQ(m.enqueues.size(), 0u);
  EXPECT_EQ(m.rebinders.size(), 0u);
}

}  // namespace
}  // namespace nova::lint
