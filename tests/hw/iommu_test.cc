#include "src/hw/iommu.h"

#include <gtest/gtest.h>

namespace nova::hw {
namespace {

class IommuTest : public ::testing::Test {
 protected:
  IommuTest() : mem_(64 << 20), iommu_(&mem_, /*present=*/true), next_(0x100000) {}

  PageTable::FrameAllocator Alloc() {
    return [this] {
      const PhysAddr f = next_;
      next_ += kPageSize;
      return f;
    };
  }

  PhysMem mem_;
  Iommu iommu_;
  PhysAddr next_;
};

TEST_F(IommuTest, UnattachedDeviceIsIdentity) {
  const std::uint64_t v = 0x1122334455667788ull;
  (void)mem_.Write64(0x5000, v);
  std::uint64_t out = 0;
  EXPECT_EQ(iommu_.DmaRead(7, 0x5000, &out, 8), Status::kSuccess);
  EXPECT_EQ(out, v);
}

TEST_F(IommuTest, ProtectedRangeBlocksDma) {
  iommu_.ProtectRange(0, 0x10000);  // Hypervisor image.
  const std::uint64_t v = 42;
  EXPECT_EQ(iommu_.DmaWrite(7, 0x8000, &v, 8), Status::kDenied);
  EXPECT_EQ(mem_.Read64(0x8000), 0u);
  EXPECT_EQ(iommu_.faults(), 1u);
  // Outside the protected range DMA proceeds.
  EXPECT_EQ(iommu_.DmaWrite(7, 0x20000, &v, 8), Status::kSuccess);
  EXPECT_EQ(mem_.Read64(0x20000), 42u);
}

TEST_F(IommuTest, AttachedDeviceTranslates) {
  iommu_.AttachDevice(7, 0x80000);
  ASSERT_EQ(iommu_.Map(7, 0x4000, 0x9000, kPageSize, true, Alloc()),
            Status::kSuccess);
  const std::uint64_t v = 0xabcdef;
  EXPECT_EQ(iommu_.DmaWrite(7, 0x4010, &v, 8), Status::kSuccess);
  EXPECT_EQ(mem_.Read64(0x9010), v);  // Landed at the translated address.
}

TEST_F(IommuTest, UnmappedIovaFaults) {
  iommu_.AttachDevice(7, 0x80000);
  std::uint64_t out = 0;
  EXPECT_EQ(iommu_.DmaRead(7, 0x4000, &out, 8), Status::kDenied);
  EXPECT_GE(iommu_.faults(), 1u);
}

TEST_F(IommuTest, ReadOnlyMappingRejectsWrites) {
  iommu_.AttachDevice(7, 0x80000);
  ASSERT_EQ(iommu_.Map(7, 0x4000, 0x9000, kPageSize, /*writable=*/false, Alloc()),
            Status::kSuccess);
  std::uint64_t v = 1;
  EXPECT_EQ(iommu_.DmaRead(7, 0x4000, &v, 8), Status::kSuccess);
  EXPECT_EQ(iommu_.DmaWrite(7, 0x4000, &v, 8), Status::kDenied);
}

TEST_F(IommuTest, FaultingWriteCommitsNothing) {
  iommu_.AttachDevice(7, 0x80000);
  ASSERT_EQ(iommu_.Map(7, 0x4000, 0x9000, kPageSize, true, Alloc()),
            Status::kSuccess);
  // Two-page transfer where the second page is unmapped: nothing lands.
  std::vector<std::uint8_t> buf(kPageSize + 16, 0xaa);
  EXPECT_EQ(iommu_.DmaWrite(7, 0x4000 + kPageSize - 8, buf.data(), 16),
            Status::kDenied);
  EXPECT_EQ(mem_.Read64(0x9000 + kPageSize - 8), 0u);
}

TEST_F(IommuTest, DetachRestoresIdentity) {
  iommu_.AttachDevice(7, 0x80000);
  iommu_.DetachDevice(7);
  const std::uint64_t v = 9;
  EXPECT_EQ(iommu_.DmaWrite(7, 0x30000, &v, 8), Status::kSuccess);
  EXPECT_EQ(mem_.Read64(0x30000), 9u);
}

TEST_F(IommuTest, InterruptRemappingRestrictsGsis) {
  iommu_.AllowGsi(7, 12);
  EXPECT_TRUE(iommu_.GsiAllowed(7, 12));
  EXPECT_FALSE(iommu_.GsiAllowed(7, 13));
  EXPECT_FALSE(iommu_.GsiAllowed(8, 12));
}

TEST(IommuAbsent, EverythingPermitted) {
  PhysMem mem(16 << 20);
  Iommu iommu(&mem, /*present=*/false);
  iommu.ProtectRange(0, 0x10000);  // Ignored without hardware.
  const std::uint64_t v = 5;
  EXPECT_EQ(iommu.DmaWrite(7, 0x8000, &v, 8), Status::kSuccess);
  EXPECT_EQ(mem.Read64(0x8000), 5u);
  EXPECT_TRUE(iommu.GsiAllowed(7, 60));
}

}  // namespace
}  // namespace nova::hw
