#include "src/hw/ahci.h"

#include <gtest/gtest.h>

#include <cstring>

#include "src/hw/irq.h"

namespace nova::hw {
namespace {

// A miniature AHCI driver, equivalent to what the host disk server and the
// guest AHCI driver do: build the command list, command table and PRDT in
// memory, then program the port registers.
class AhciTest : public ::testing::Test {
 protected:
  static constexpr PhysAddr kClb = 0x10000;    // Command list base.
  static constexpr PhysAddr kCtba = 0x11000;   // Command table base.
  static constexpr PhysAddr kBuf = 0x20000;    // Data buffer.
  static constexpr std::uint32_t kGsi = 11;

  AhciTest()
      : mem_(64 << 20),
        iommu_(&mem_, true),
        disk_(&events_, DiskGeometry{}),
        hba_(7, &iommu_, &irq_, kGsi, &disk_) {
    irq_.Configure(kGsi, 0, 43);
    irq_.Unmask(kGsi);
    iommu_.AllowGsi(7, kGsi);
    // Bring the HBA up the way a driver would.
    (void)hba_.MmioWrite(ahci::kGhc, 4, ahci::kGhcIntrEnable);
    (void)hba_.MmioWrite(ahci::kPxClb, 4, kClb);
    (void)hba_.MmioWrite(ahci::kPxIe, 4, ahci::kPxIsDhrs);
    (void)hba_.MmioWrite(ahci::kPxCmd, 4, ahci::kPxCmdStart);
  }

  void BuildRead(int slot, std::uint64_t lba, std::uint16_t sectors,
                 PhysAddr buffer) {
    // Command header.
    std::uint32_t dw0 = 1u << 16;  // One PRDT entry.
    (void)mem_.Write32(kClb + slot * 32, dw0);
    (void)mem_.Write32(kClb + slot * 32 + 8, static_cast<std::uint32_t>(kCtba));
    // Command FIS.
    std::uint8_t cfis[64] = {};
    cfis[0] = ahci::kFisH2d;
    cfis[2] = ahci::kCmdReadDmaExt;
    for (int i = 0; i < 6; ++i) {
      cfis[4 + i] = static_cast<std::uint8_t>(lba >> (8 * i));
    }
    std::memcpy(cfis + 12, &sectors, 2);
    (void)mem_.Write(kCtba, cfis, sizeof(cfis));
    // PRDT entry 0.
    (void)mem_.Write64(kCtba + 0x80, buffer);
    (void)mem_.Write32(kCtba + 0x80 + 12, sectors * kSectorSize - 1);
  }

  sim::EventQueue events_;
  PhysMem mem_;
  Iommu iommu_;
  IrqChip irq_;
  DiskModel disk_;
  AhciController hba_;
};

TEST_F(AhciTest, ReadDmaCompletesWithInterrupt) {
  const char msg[] = "ahci sector data";
  disk_.WriteContent(5 * kSectorSize, msg, sizeof(msg));

  BuildRead(0, 5, 1, kBuf);
  (void)hba_.MmioWrite(ahci::kPxCi, 4, 1);
  EXPECT_EQ(hba_.MmioRead(ahci::kPxCi, 4), 1u);  // In flight.

  events_.AdvanceTo(sim::Milliseconds(10));
  EXPECT_EQ(hba_.MmioRead(ahci::kPxCi, 4), 0u);  // Slot cleared.
  EXPECT_EQ(hba_.MmioRead(ahci::kPxIs, 4) & ahci::kPxIsDhrs, ahci::kPxIsDhrs);
  EXPECT_EQ(hba_.MmioRead(ahci::kIs, 4), 1u);
  EXPECT_TRUE(irq_.HasPending(0));

  char out[sizeof(msg)] = {};
  (void)mem_.Read(kBuf, out, sizeof(out));
  EXPECT_STREQ(out, msg);
}

TEST_F(AhciTest, WriteThenReadBack) {
  const char msg[] = "written via hba";
  (void)mem_.Write(kBuf, msg, sizeof(msg));

  // Build a write command.
  std::uint32_t dw0 = (1u << 16) | (1u << 6);  // One PRDT entry, write.
  (void)mem_.Write32(kClb, dw0);
  (void)mem_.Write32(kClb + 8, static_cast<std::uint32_t>(kCtba));
  std::uint8_t cfis[64] = {};
  cfis[0] = ahci::kFisH2d;
  cfis[2] = ahci::kCmdWriteDmaExt;
  cfis[4] = 9;  // LBA 9.
  std::uint16_t sectors = 1;
  std::memcpy(cfis + 12, &sectors, 2);
  (void)mem_.Write(kCtba, cfis, sizeof(cfis));
  (void)mem_.Write64(kCtba + 0x80, kBuf);
  (void)mem_.Write32(kCtba + 0x80 + 12, kSectorSize - 1);

  (void)hba_.MmioWrite(ahci::kPxCi, 4, 1);
  events_.AdvanceTo(sim::Milliseconds(10));

  char out[sizeof(msg)] = {};
  disk_.ReadContent(9 * kSectorSize, out, sizeof(out));
  EXPECT_STREQ(out, msg);
}

TEST_F(AhciTest, InterruptStatusWriteOneClears) {
  BuildRead(0, 5, 1, kBuf);
  (void)hba_.MmioWrite(ahci::kPxCi, 4, 1);
  events_.AdvanceTo(sim::Milliseconds(10));
  (void)hba_.MmioWrite(ahci::kPxIs, 4, ahci::kPxIsDhrs);
  (void)hba_.MmioWrite(ahci::kIs, 4, 1);
  EXPECT_EQ(hba_.MmioRead(ahci::kPxIs, 4), 0u);
  EXPECT_EQ(hba_.MmioRead(ahci::kIs, 4), 0u);
}

TEST_F(AhciTest, NoIssueWhileStopped) {
  (void)hba_.MmioWrite(ahci::kPxCmd, 4, 0);  // Stop the command engine.
  BuildRead(0, 5, 1, kBuf);
  (void)hba_.MmioWrite(ahci::kPxCi, 4, 1);
  EXPECT_EQ(hba_.MmioRead(ahci::kPxCi, 4), 0u);  // Not accepted.
  events_.AdvanceTo(sim::Milliseconds(10));
  EXPECT_EQ(disk_.completed_requests(), 0u);
}

TEST_F(AhciTest, DmaFaultSetsTaskFileError) {
  // Attach the device to a remapping context with nothing mapped: the
  // command-list fetch itself faults.
  iommu_.AttachDevice(7, 0x80000);
  BuildRead(0, 5, 1, kBuf);
  (void)hba_.MmioWrite(ahci::kPxCi, 4, 1);
  EXPECT_EQ(hba_.MmioRead(ahci::kPxIs, 4) & ahci::kPxIsTfes, ahci::kPxIsTfes);
  EXPECT_GE(hba_.dma_faults(), 1u);
  EXPECT_EQ(hba_.MmioRead(ahci::kPxCi, 4), 0u);
}

TEST_F(AhciTest, PresenceRegisters) {
  EXPECT_EQ(hba_.MmioRead(ahci::kPi, 4), 1u);
  EXPECT_EQ(hba_.MmioRead(ahci::kPxSsts, 4), 0x123u);
  EXPECT_EQ(hba_.MmioRead(ahci::kCap, 4), 1u);
}

TEST_F(AhciTest, MultipleSlotsComplete) {
  static constexpr PhysAddr kCtba2 = 0x12000;
  BuildRead(0, 5, 1, kBuf);
  // Slot 1 with its own command table.
  (void)mem_.Write32(kClb + 32, 1u << 16);
  (void)mem_.Write32(kClb + 32 + 8, static_cast<std::uint32_t>(kCtba2));
  std::uint8_t cfis[64] = {};
  cfis[0] = ahci::kFisH2d;
  cfis[2] = ahci::kCmdReadDmaExt;
  cfis[4] = 20;
  std::uint16_t sectors = 1;
  std::memcpy(cfis + 12, &sectors, 2);
  (void)mem_.Write(kCtba2, cfis, sizeof(cfis));
  (void)mem_.Write64(kCtba2 + 0x80, kBuf + 0x1000);
  (void)mem_.Write32(kCtba2 + 0x80 + 12, kSectorSize - 1);

  (void)hba_.MmioWrite(ahci::kPxCi, 4, 0b11);
  events_.AdvanceTo(sim::Milliseconds(10));
  EXPECT_EQ(hba_.MmioRead(ahci::kPxCi, 4), 0u);
  EXPECT_EQ(disk_.completed_requests(), 2u);
}

}  // namespace
}  // namespace nova::hw
