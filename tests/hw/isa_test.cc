// The guest instruction encoding and assembler.
#include "src/hw/isa.h"

#include <gtest/gtest.h>

#include "src/sim/rng.h"

namespace nova::hw::isa {
namespace {

TEST(Isa, EncodeDecodeRoundTrip) {
  sim::Rng rng(3);
  const Opcode opcodes[] = {Opcode::kNopBlock, Opcode::kMovImm, Opcode::kAdd,
                            Opcode::kAnd,      Opcode::kLoad,   Opcode::kStore,
                            Opcode::kCopy,     Opcode::kJmp,    Opcode::kJnz,
                            Opcode::kLoop,     Opcode::kOut,    Opcode::kIn,
                            Opcode::kCpuid,    Opcode::kHlt,    Opcode::kRdtsc,
                            Opcode::kMovCr3,   Opcode::kReadCr3, Opcode::kReadCr2,
                            Opcode::kInvlpg,   Opcode::kSti,    Opcode::kCli,
                            Opcode::kIret,     Opcode::kSetIdt, Opcode::kVmcall,
                            Opcode::kGuestLogic};
  for (int i = 0; i < 500; ++i) {
    Insn in;
    in.opcode = opcodes[rng.Below(std::size(opcodes))];
    in.r1 = static_cast<std::uint8_t>(rng.Below(kNumRegs));
    in.r2 = rng.Chance(0.3) ? kNoReg : static_cast<std::uint8_t>(rng.Below(kNumRegs));
    in.flags = static_cast<std::uint8_t>(rng.Below(256));
    in.imm32 = static_cast<std::uint32_t>(rng.Next());
    in.imm64 = rng.Next();

    std::uint8_t bytes[kInsnSize];
    Encode(in, bytes);
    const Insn out = Decode(bytes);
    EXPECT_EQ(out.opcode, in.opcode);
    EXPECT_EQ(out.r1, in.r1);
    EXPECT_EQ(out.r2, in.r2);
    EXPECT_EQ(out.flags, in.flags);
    EXPECT_EQ(out.imm32, in.imm32);
    EXPECT_EQ(out.imm64, in.imm64);
  }
}

TEST(Isa, AssemblerAddressesAreSequentialAndAligned) {
  Assembler as(0x10000);
  EXPECT_EQ(as.Here(), 0x10000u);
  const std::uint64_t a = as.NopBlock(1);
  const std::uint64_t b = as.MovImm(0, 1);
  const std::uint64_t c = as.Hlt();
  EXPECT_EQ(a, 0x10000u);
  EXPECT_EQ(b, a + kInsnSize);
  EXPECT_EQ(c, b + kInsnSize);
  EXPECT_EQ(as.bytes().size(), 3 * kInsnSize);
  EXPECT_EQ(a % kInsnSize, 0u);  // Never straddles a page boundary.
}

TEST(Isa, PatchImm64RewritesForwardTargets) {
  Assembler as(0x10000);
  const std::uint64_t jnz_at = as.Jnz(1, 0);  // Placeholder target.
  as.NopBlock(5);
  const std::uint64_t target = as.Hlt();
  as.PatchImm64(jnz_at, target);

  const Insn decoded = Decode(as.bytes().data());
  EXPECT_EQ(decoded.opcode, Opcode::kJnz);
  EXPECT_EQ(decoded.imm64, target);
}

TEST(Isa, ConvenienceEmittersEncodeExpectedFields) {
  Assembler as(0);
  as.Out(0x3f8, 5);
  Insn out = Decode(as.bytes().data());
  EXPECT_EQ(out.opcode, Opcode::kOut);
  EXPECT_EQ(out.imm32, 0x3f8u);
  EXPECT_EQ(out.r1, 5);

  Assembler as2(0);
  as2.SetIdt(14, 0xdeadb000);
  Insn idt = Decode(as2.bytes().data());
  EXPECT_EQ(idt.opcode, Opcode::kSetIdt);
  EXPECT_EQ(idt.imm32, 14u);
  EXPECT_EQ(idt.imm64, 0xdeadb000u);

  Assembler as3(0);
  as3.Load(3, 4, 0x1000);
  Insn ld = Decode(as3.bytes().data());
  EXPECT_EQ(ld.opcode, Opcode::kLoad);
  EXPECT_EQ(ld.r1, 3);
  EXPECT_EQ(ld.r2, 4);
  EXPECT_EQ(ld.imm64, 0x1000u);
}

}  // namespace
}  // namespace nova::hw::isa
