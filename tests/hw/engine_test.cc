#include "src/hw/vm_engine.h"

#include <gtest/gtest.h>

#include "src/hw/machine.h"

namespace nova::hw {
namespace {

constexpr sim::Cycles kBudget = 10'000'000;

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : machine_(MachineConfig{.cpus = {&CoreI7_920()}, .ram_size = 256ull << 20}),
        engine_(&machine_.cpu(0), &machine_.mem(), &machine_.bus(), &machine_.irq()),
        next_frame_(16ull << 20) {}

  PageTable::FrameAllocator Alloc() {
    return [this] {
      const PhysAddr f = next_frame_;
      next_frame_ += kPageSize;
      return f;
    };
  }

  // Place an assembled program at physical address == its base.
  void Install(const isa::Assembler& as) {
    (void)machine_.mem().Write(as.base(), as.bytes().data(), as.bytes().size());
  }

  Machine machine_;
  VmEngine engine_;
  PhysAddr next_frame_;
};

TEST_F(EngineTest, BasicAluAndMemory) {
  isa::Assembler as(0x10000);
  as.MovImm(0, 5);
  as.MovImm(1, 7);
  as.AddReg(0, 1);           // r0 = 12.
  as.StoreAbs(0, 0x20000);   // mem[0x20000] = 12.
  as.LoadAbs(2, 0x20000);    // r2 = 12.
  as.Hlt();
  Install(as);

  GuestState gs;
  gs.rip = 0x10000;
  const VmExit exit = engine_.Run(gs, VmControls{}, kBudget);
  EXPECT_EQ(exit.reason, ExitReason::kHlt);
  EXPECT_EQ(gs.regs[0], 12u);
  EXPECT_EQ(gs.regs[2], 12u);
  EXPECT_EQ(machine_.mem().Read64(0x20000), 12u);
  EXPECT_EQ(engine_.instructions(), 6u);
}

TEST_F(EngineTest, LoopExecutesNTimes) {
  isa::Assembler as(0x10000);
  as.MovImm(0, 10);  // Counter.
  as.MovImm(1, 0);   // Accumulator.
  const std::uint64_t top = as.AddImm(1, 3);
  as.Loop(0, top);
  as.Hlt();
  Install(as);

  GuestState gs;
  gs.rip = 0x10000;
  engine_.Run(gs, VmControls{}, kBudget);
  EXPECT_EQ(gs.regs[1], 30u);
}

TEST_F(EngineTest, NopBlockChargesCycles) {
  isa::Assembler as(0x10000);
  as.NopBlock(12345);
  as.Hlt();
  Install(as);

  GuestState gs;
  gs.rip = 0x10000;
  const sim::Cycles before = machine_.cpu(0).cycles();
  engine_.Run(gs, VmControls{}, kBudget);
  EXPECT_GE(machine_.cpu(0).cycles() - before, 12345u);
}

TEST_F(EngineTest, BudgetExhaustionPreempts) {
  isa::Assembler as(0x10000);
  const std::uint64_t top = as.NopBlock(100);
  as.Jmp(top);
  Install(as);

  GuestState gs;
  gs.rip = 0x10000;
  const VmExit exit = engine_.Run(gs, VmControls{}, 5000);
  EXPECT_EQ(exit.reason, ExitReason::kPreempt);
  EXPECT_GE(machine_.cpu(0).cycles(), 5000u);
}

TEST_F(EngineTest, NativePagingTranslatesAndFaults) {
  // Identity-map the code page and map data GVA 0x400000 -> PA 0x300000.
  const PhysAddr pt_root = 0x800000;
  PageTable pt(&machine_.mem(), PagingMode::kTwoLevel, pt_root);
  ASSERT_EQ(pt.Map(0x10000, 0x10000, kPageSize, pte::kWritable, Alloc()),
            Status::kSuccess);
  ASSERT_EQ(pt.Map(0x400000, 0x300000, kPageSize, pte::kWritable, Alloc()),
            Status::kSuccess);
  ASSERT_EQ(pt.Map(0x11000, 0x11000, kPageSize, pte::kWritable, Alloc()),
            Status::kSuccess);  // Fault-handler page.

  isa::Assembler handler(0x11000);  // #PF handler: r7 = cr2, map nothing, halt.
  handler.ReadCr2(7);
  handler.Hlt();
  Install(handler);

  isa::Assembler as(0x10000);
  as.SetIdt(kVectorPageFault, 0x11000);
  as.MovImm(0, 77);
  as.StoreAbs(0, 0x400008);  // Mapped: succeeds.
  as.LoadAbs(1, 0x400008);
  as.StoreAbs(0, 0x500000);  // Unmapped: #PF to the handler.
  as.Hlt();
  Install(as);

  GuestState gs;
  gs.rip = 0x10000;
  gs.cr3 = pt_root;
  gs.paging = true;
  const VmExit exit = engine_.Run(gs, VmControls{}, kBudget);
  EXPECT_EQ(exit.reason, ExitReason::kHlt);
  EXPECT_EQ(gs.regs[1], 77u);
  EXPECT_EQ(machine_.mem().Read64(0x300008), 77u);  // Translated store.
  EXPECT_EQ(gs.regs[7], 0x500000u);                 // CR2 seen by handler.
  EXPECT_EQ(gs.frame_depth, 1);                     // Still in the handler.
}

TEST_F(EngineTest, PioInterceptExits) {
  isa::Assembler as(0x10000);
  as.MovImm(3, 0xab);
  as.Out(0x70, 3);
  as.Hlt();
  Install(as);

  GuestState gs;
  gs.rip = 0x10000;
  VmControls ctl;
  ctl.mode = TranslationMode::kNested;
  ctl.nested_root = 0x900000;
  PageTable ept(&machine_.mem(), PagingMode::kFourLevel, 0x900000);
  ASSERT_EQ(ept.Map(0x10000, 0x10000, kPageSize, pte::kWritable | pte::kUser, Alloc()),
            Status::kSuccess);

  const VmExit exit = engine_.Run(gs, ctl, kBudget);
  EXPECT_EQ(exit.reason, ExitReason::kPio);
  EXPECT_TRUE(exit.is_write);
  EXPECT_EQ(exit.port, 0x70);
  EXPECT_EQ(exit.value, 0xabu);
  // RIP stays at the faulting instruction: the VMM advances it.
  EXPECT_EQ(gs.rip, 0x10000u + isa::kInsnSize);
}

TEST_F(EngineTest, CpuidInterceptAndNative) {
  isa::Assembler as(0x10000);
  as.Cpuid();
  as.Hlt();
  Install(as);

  // Native: executes inline.
  GuestState gs;
  gs.rip = 0x10000;
  EXPECT_EQ(engine_.Run(gs, VmControls{}, kBudget).reason, ExitReason::kHlt);
  EXPECT_NE(gs.regs[1], 0u);  // Frequency leaf.

  // Intercepted: exits.
  GuestState gs2;
  gs2.rip = 0x10000;
  VmControls ctl;
  ctl.intercept_cpuid = true;
  EXPECT_EQ(engine_.Run(gs2, ctl, kBudget).reason, ExitReason::kCpuid);
}

TEST_F(EngineTest, NestedUnmappedGpaIsEptViolation) {
  const PhysAddr ept_root = 0x900000;
  PageTable ept(&machine_.mem(), PagingMode::kFourLevel, ept_root);
  ASSERT_EQ(ept.Map(0x10000, 0x10000, kPageSize, pte::kWritable | pte::kUser, Alloc()),
            Status::kSuccess);

  isa::Assembler as(0x10000);
  as.MovImm(0, 1);
  as.StoreAbs(0, 0xfee00000);  // MMIO region: not mapped in the EPT.
  as.Hlt();
  Install(as);

  GuestState gs;
  gs.rip = 0x10000;
  VmControls ctl;
  ctl.mode = TranslationMode::kNested;
  ctl.nested_root = ept_root;

  const VmExit exit = engine_.Run(gs, ctl, kBudget);
  EXPECT_EQ(exit.reason, ExitReason::kEptViolation);
  EXPECT_EQ(exit.gpa, 0xfee00000u);
  EXPECT_TRUE(exit.is_write);
}

TEST_F(EngineTest, NestedGuestPagingTwoDimensionalWalk) {
  // Guest page table (in guest-physical space) at GPA 0x40000.
  // EPT identity-maps guest RAM 0..32 MiB.
  const PhysAddr ept_root = 0x900000;
  PageTable ept(&machine_.mem(), PagingMode::kFourLevel, ept_root);
  for (PhysAddr gpa = 0; gpa < (32ull << 20); gpa += (2ull << 20)) {
    ASSERT_EQ(ept.Map(gpa, gpa, 2ull << 20, pte::kWritable | pte::kUser, Alloc()),
              Status::kSuccess);
  }
  PageTable gpt(&machine_.mem(), PagingMode::kTwoLevel, 0x40000);
  PhysAddr gnext = 0x50000;
  auto galloc = [&gnext] {
    const PhysAddr f = gnext;
    gnext += kPageSize;
    return f;
  };
  ASSERT_EQ(gpt.Map(0x10000, 0x10000, kPageSize, pte::kWritable, galloc),
            Status::kSuccess);
  ASSERT_EQ(gpt.Map(0x700000, 0x200000, kPageSize, pte::kWritable, galloc),
            Status::kSuccess);

  isa::Assembler as(0x10000);
  as.MovImm(0, 99);
  as.StoreAbs(0, 0x700010);
  as.Hlt();
  Install(as);

  GuestState gs;
  gs.rip = 0x10000;
  gs.cr3 = 0x40000;
  gs.paging = true;
  VmControls ctl;
  ctl.mode = TranslationMode::kNested;
  ctl.nested_root = ept_root;

  EXPECT_EQ(engine_.Run(gs, ctl, kBudget).reason, ExitReason::kHlt);
  EXPECT_EQ(machine_.mem().Read64(0x200010), 99u);  // GVA->GPA->HPA worked.
}

TEST_F(EngineTest, ShadowMissExitsWithPageFault) {
  const PhysAddr shadow_root = 0xa00000;
  PageTable shadow(&machine_.mem(), PagingMode::kFourLevel, shadow_root);
  ASSERT_EQ(shadow.Map(0x10000, 0x10000, kPageSize, pte::kWritable | pte::kUser,
                       Alloc()),
            Status::kSuccess);

  isa::Assembler as(0x10000);
  as.LoadAbs(0, 0x600000);  // Not in the shadow table.
  as.Hlt();
  Install(as);

  GuestState gs;
  gs.rip = 0x10000;
  gs.paging = true;
  gs.cr3 = 0x40000;
  VmControls ctl;
  ctl.mode = TranslationMode::kShadow;
  ctl.nested_root = shadow_root;
  ctl.intercept_cr3 = true;
  ctl.intercept_invlpg = true;

  const VmExit exit = engine_.Run(gs, ctl, kBudget);
  EXPECT_EQ(exit.reason, ExitReason::kPageFault);
  EXPECT_EQ(exit.gva, 0x600000u);
  EXPECT_FALSE(exit.is_write);
}

TEST_F(EngineTest, ShadowModeInterceptsCr3AndInvlpg) {
  const PhysAddr shadow_root = 0xa00000;
  PageTable shadow(&machine_.mem(), PagingMode::kFourLevel, shadow_root);
  ASSERT_EQ(shadow.Map(0x10000, 0x10000, kPageSize, pte::kWritable | pte::kUser,
                       Alloc()),
            Status::kSuccess);

  isa::Assembler as(0x10000);
  as.MovCr3Imm(0x77000);
  as.Hlt();
  Install(as);

  GuestState gs;
  gs.rip = 0x10000;
  VmControls ctl;
  ctl.mode = TranslationMode::kShadow;
  ctl.nested_root = shadow_root;
  ctl.intercept_cr3 = true;

  const VmExit exit = engine_.Run(gs, ctl, kBudget);
  EXPECT_EQ(exit.reason, ExitReason::kMovCr);
  EXPECT_EQ(exit.qual, 0x77000u);
  EXPECT_EQ(gs.cr3, 0u);  // Not performed: the hypervisor does it.
}

TEST_F(EngineTest, NativeInterruptDelivery) {
  // The handler signals through memory: IRET restores the register bank,
  // so registers cannot carry results out of an ISR.
  isa::Assembler handler(0x12000);
  handler.MovImm(5, 1);  // Mark: handler ran.
  handler.StoreAbs(5, 0x20000);
  handler.Iret();
  Install(handler);

  isa::Assembler as(0x10000);
  as.SetIdt(40, 0x12000);
  as.Sti();
  const std::uint64_t spin = as.NopBlock(10);
  as.LoadAbs(5, 0x20000);
  as.Jnz(5, as.Here() + 2 * isa::kInsnSize);  // Exit loop once flag set.
  as.Jmp(spin);
  as.Hlt();
  Install(as);

  machine_.irq().Configure(8, 0, 40);
  machine_.irq().Unmask(8);
  machine_.irq().Assert(8);

  GuestState gs;
  gs.rip = 0x10000;
  const VmExit exit = engine_.Run(gs, VmControls{}, kBudget);
  EXPECT_EQ(exit.reason, ExitReason::kHlt);
  EXPECT_EQ(machine_.mem().Read64(0x20000), 1u);
  EXPECT_EQ(gs.frame_depth, 0);  // IRET unwound.
  EXPECT_FALSE(machine_.irq().HasPending(0));
}

TEST_F(EngineTest, IretRestoresClobberedRegisters) {
  // An ISR that scribbles over every GPR must not perturb the interrupted
  // context: delivery banks the register file and IRET restores it. (A
  // clobbered register once leaked into a guest's pending CR3 switch,
  // wedging the VM in an unresolvable page-fault storm.)
  isa::Assembler handler(0x12000);
  for (int r = 0; r < 8; ++r) {
    handler.MovImm(r, 0xdead0000 + r);
  }
  handler.StoreAbs(0, 0x20000);  // Mark: handler ran.
  handler.Iret();
  Install(handler);

  isa::Assembler as(0x10000);
  as.SetIdt(40, 0x12000);
  for (int r = 0; r < 8; ++r) {
    as.MovImm(r, 100 + r);
  }
  as.Sti();  // Pending vector delivered here, clobbering every register.
  as.Hlt();
  Install(as);

  machine_.irq().Configure(8, 0, 40);
  machine_.irq().Unmask(8);
  machine_.irq().Assert(8);

  GuestState gs;
  gs.rip = 0x10000;
  const VmExit exit = engine_.Run(gs, VmControls{}, kBudget);
  EXPECT_EQ(exit.reason, ExitReason::kHlt);
  ASSERT_NE(machine_.mem().Read64(0x20000), 0u);  // The ISR did run.
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(gs.regs[r], 100u + r) << "register " << r;
  }
}

TEST_F(EngineTest, GuestModeExternalInterruptExits) {
  isa::Assembler as(0x10000);
  as.NopBlock(10);
  as.Hlt();
  Install(as);

  const PhysAddr ept_root = 0x900000;
  PageTable ept(&machine_.mem(), PagingMode::kFourLevel, ept_root);
  ASSERT_EQ(ept.Map(0x10000, 0x10000, kPageSize, pte::kWritable | pte::kUser, Alloc()),
            Status::kSuccess);

  machine_.irq().Configure(8, 0, 40);
  machine_.irq().Unmask(8);
  machine_.irq().Assert(8);

  GuestState gs;
  gs.rip = 0x10000;
  VmControls ctl;
  ctl.mode = TranslationMode::kNested;
  ctl.nested_root = ept_root;
  EXPECT_EQ(engine_.Run(gs, ctl, kBudget).reason, ExitReason::kExtInt);
}

TEST_F(EngineTest, InjectionAndInterruptWindow) {
  isa::Assembler handler(0x12000);
  handler.MovImm(5, 42);
  handler.StoreAbs(5, 0x20000);  // ISR results go through memory.
  handler.Iret();
  Install(handler);

  isa::Assembler as(0x10000);
  as.SetIdt(33, 0x12000);
  as.Cli();
  as.NopBlock(10);
  as.Sti();  // Window opens here.
  as.Hlt();
  Install(as);

  GuestState gs;
  gs.rip = 0x10000;
  VmControls ctl;  // Native is fine: window logic is mode-independent.

  // The VMM wants to inject but IF=0, so it requests a window exit.
  gs.request_intr_window = true;
  VmExit exit = engine_.Run(gs, ctl, kBudget);
  EXPECT_EQ(exit.reason, ExitReason::kIntrWindow);
  EXPECT_TRUE(gs.interrupts_enabled);

  // Now the VMM injects; the guest handler runs before HLT.
  gs.request_intr_window = false;
  gs.inject_pending = true;
  gs.inject_vector = 33;
  exit = engine_.Run(gs, ctl, kBudget);
  EXPECT_EQ(exit.reason, ExitReason::kHlt);
  EXPECT_EQ(machine_.mem().Read64(0x20000), 42u);
  EXPECT_EQ(engine_.injected_events(), 1u);
}

TEST_F(EngineTest, RecallForcesExit) {
  isa::Assembler as(0x10000);
  const std::uint64_t top = as.NopBlock(10);
  as.Jmp(top);
  Install(as);

  GuestState gs;
  gs.rip = 0x10000;
  gs.recall_pending = true;
  EXPECT_EQ(engine_.Run(gs, VmControls{}, kBudget).reason, ExitReason::kRecall);
}

TEST_F(EngineTest, HaltWakesOnInjection) {
  isa::Assembler handler(0x12000);
  handler.MovImm(5, 7);
  handler.StoreAbs(5, 0x20000);  // ISR results go through memory.
  handler.Iret();
  Install(handler);

  isa::Assembler as(0x10000);
  as.SetIdt(34, 0x12000);
  as.Sti();
  as.Hlt();
  as.Hlt();  // After wake + IRET, halts again.
  Install(as);

  GuestState gs;
  gs.rip = 0x10000;
  EXPECT_EQ(engine_.Run(gs, VmControls{}, kBudget).reason, ExitReason::kHlt);
  EXPECT_TRUE(gs.halted);

  gs.inject_pending = true;
  gs.inject_vector = 34;
  EXPECT_EQ(engine_.Run(gs, VmControls{}, kBudget).reason, ExitReason::kHlt);
  EXPECT_EQ(machine_.mem().Read64(0x20000), 7u);
}

TEST_F(EngineTest, InvalidOpcodeIsError) {
  (void)machine_.mem().WriteAs<std::uint8_t>(0x10000, 0xff);
  GuestState gs;
  gs.rip = 0x10000;
  EXPECT_EQ(engine_.Run(gs, VmControls{}, kBudget).reason, ExitReason::kError);
}

TEST_F(EngineTest, GuestLogicCallbackRuns) {
  isa::Assembler as(0x10000);
  as.GuestLogic(3);
  as.Hlt();
  Install(as);

  std::uint32_t seen = 0;
  engine_.set_guest_logic([&](std::uint32_t id, GuestState& gs) {
    seen = id;
    gs.regs[2] = 0x1234;
  });

  GuestState gs;
  gs.rip = 0x10000;
  engine_.Run(gs, VmControls{}, kBudget);
  EXPECT_EQ(seen, 3u);
  EXPECT_EQ(gs.regs[2], 0x1234u);
}

TEST_F(EngineTest, CopyMovesBytesAndCharges) {
  isa::Assembler as(0x10000);
  as.MovImm(0, 0x30000);  // dst
  as.MovImm(1, 0x20000);  // src
  as.Copy(0, 1, 8192);    // Crosses pages.
  as.Hlt();
  Install(as);

  for (std::uint64_t off = 0; off < 8192; off += 8) {
    (void)machine_.mem().Write64(0x20000 + off, off * 3 + 1);
  }
  GuestState gs;
  gs.rip = 0x10000;
  engine_.Run(gs, VmControls{}, kBudget);
  for (std::uint64_t off = 0; off < 8192; off += 8) {
    ASSERT_EQ(machine_.mem().Read64(0x30000 + off), off * 3 + 1);
  }
}

TEST_F(EngineTest, MmioDirectAccessRoutesToDevice) {
  // A device window mapped in the EPT is reached without exits (direct
  // assignment / framebuffer case from §7.2).
  class Probe : public Device {
   public:
    Probe() : Device(9, "probe") {}
    std::uint64_t MmioRead(std::uint64_t off, unsigned) override { return off + 1; }
    void MmioWrite(std::uint64_t off, unsigned, std::uint64_t v) override {
      last_off = off;
      last_val = v;
    }
    std::uint64_t last_off = 0;
    std::uint64_t last_val = 0;
  };
  auto* probe = machine_.AddDevice(std::make_unique<Probe>());
  ASSERT_EQ(machine_.bus().RegisterMmio(0xc0000000, 0x1000, probe), Status::kSuccess);

  const PhysAddr ept_root = 0x900000;
  PageTable ept(&machine_.mem(), PagingMode::kFourLevel, ept_root);
  ASSERT_EQ(ept.Map(0x10000, 0x10000, kPageSize, pte::kWritable | pte::kUser, Alloc()),
            Status::kSuccess);
  ASSERT_EQ(ept.Map(0xd0000000, 0xc0000000, kPageSize, pte::kWritable | pte::kUser,
                    Alloc()),
            Status::kSuccess);

  isa::Assembler as(0x10000);
  as.MovImm(0, 55);
  as.StoreAbs(0, 0xd0000010);  // GPA -> device window.
  as.LoadAbs(1, 0xd0000020);
  as.Hlt();
  Install(as);

  GuestState gs;
  gs.rip = 0x10000;
  VmControls ctl;
  ctl.mode = TranslationMode::kNested;
  ctl.nested_root = ept_root;
  EXPECT_EQ(engine_.Run(gs, ctl, kBudget).reason, ExitReason::kHlt);
  EXPECT_EQ(probe->last_off, 0x10u);
  EXPECT_EQ(probe->last_val, 55u);
  EXPECT_EQ(gs.regs[1], 0x21u);
}

}  // namespace
}  // namespace nova::hw
