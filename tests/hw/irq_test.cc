#include "src/hw/irq.h"

#include <gtest/gtest.h>

namespace nova::hw {
namespace {

TEST(IrqChip, UnroutedInterruptDropped) {
  IrqChip chip;
  chip.Assert(5);
  EXPECT_FALSE(chip.HasPending(0));
  EXPECT_EQ(chip.asserted(5), 1u);
}

TEST(IrqChip, MaskedInterruptLatchesUntilUnmask) {
  IrqChip chip;
  chip.Configure(3, 0, 35);  // Routes start masked.
  chip.Assert(3);
  EXPECT_FALSE(chip.HasPending(0));
  chip.Unmask(3);
  EXPECT_TRUE(chip.HasPending(0));
  EXPECT_EQ(chip.PendingVector(0), 35);
}

TEST(IrqChip, UnmaskedDeliversImmediately) {
  IrqChip chip;
  chip.Configure(3, 1, 35);
  chip.Unmask(3);
  chip.Assert(3);
  EXPECT_FALSE(chip.HasPending(0));  // Routed to CPU 1, not 0.
  EXPECT_TRUE(chip.HasPending(1));
}

TEST(IrqChip, AcknowledgeConsumes) {
  IrqChip chip;
  chip.Configure(3, 0, 35);
  chip.Unmask(3);
  chip.Assert(3);
  chip.Acknowledge(0, 35);
  EXPECT_FALSE(chip.HasPending(0));
}

TEST(IrqChip, HighestVectorWins) {
  IrqChip chip;
  chip.Configure(1, 0, 33);
  chip.Configure(9, 0, 41);
  chip.Unmask(1);
  chip.Unmask(9);
  chip.Assert(1);
  chip.Assert(9);
  EXPECT_EQ(chip.PendingVector(0), 41);
  chip.Acknowledge(0, 41);
  EXPECT_EQ(chip.PendingVector(0), 33);
}

TEST(IrqChip, PendingVectorsSnapshot) {
  IrqChip chip;
  chip.Configure(1, 0, 33);
  chip.Configure(2, 0, 34);
  chip.Unmask(1);
  chip.Unmask(2);
  chip.Assert(1);
  chip.Assert(2);
  const auto vectors = chip.PendingVectors(0);
  ASSERT_EQ(vectors.size(), 2u);
  EXPECT_EQ(vectors[0], 34);  // Highest first.
  EXPECT_EQ(vectors[1], 33);
  // Snapshot does not consume.
  EXPECT_TRUE(chip.HasPending(0));
}

TEST(IrqChip, RemaskWhilePendingKeepsPendingBit) {
  IrqChip chip;
  chip.Configure(4, 0, 36);
  chip.Unmask(4);
  chip.Assert(4);
  chip.Mask(4);
  // Already-delivered interrupt stays pending at the CPU.
  EXPECT_TRUE(chip.HasPending(0));
  // New edges latch while masked.
  chip.Acknowledge(0, 36);
  chip.Assert(4);
  EXPECT_FALSE(chip.HasPending(0));
  chip.Unmask(4);
  EXPECT_TRUE(chip.HasPending(0));
}

TEST(IrqChip, OutOfRangeIgnored) {
  IrqChip chip;
  chip.Configure(kNumGsis + 1, 0, 40);  // No crash.
  chip.Assert(kNumGsis + 1);
  chip.Unmask(kNumGsis + 1);
  EXPECT_FALSE(chip.HasPending(0));
  EXPECT_FALSE(chip.PendingVector(kMaxCpus + 1).has_value());
}

}  // namespace
}  // namespace nova::hw
