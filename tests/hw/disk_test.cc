#include "src/hw/disk.h"

#include <gtest/gtest.h>

namespace nova::hw {
namespace {

// Convenience: latch completions through the registered handler.
struct Catcher {
  explicit Catcher(DiskModel* disk) {
    disk->set_completion_handler([this](DiskModel::RequestId, std::uint64_t c,
                                        Status s, const std::uint8_t* data,
                                        std::uint64_t len) {
      cookies.push_back(c);
      statuses.push_back(s);
      last_data.assign(data, data + len);
    });
  }
  std::vector<std::uint64_t> cookies;
  std::vector<Status> statuses;
  std::vector<std::uint8_t> last_data;
};

TEST(DiskModel, ContentRoundTrip) {
  sim::EventQueue events;
  DiskModel disk(&events, DiskGeometry{});
  const char data[] = "hello disk";
  disk.WriteContent(12345, data, sizeof(data));
  char out[sizeof(data)] = {};
  disk.ReadContent(12345, out, sizeof(data));
  EXPECT_STREQ(out, "hello disk");
}

TEST(DiskModel, UnwrittenSectorsDeterministic) {
  sim::EventQueue events;
  DiskModel disk(&events, DiskGeometry{});
  std::uint8_t a[64], b[64];
  disk.ReadContent(777777, a, sizeof(a));
  disk.ReadContent(777777, b, sizeof(b));
  EXPECT_EQ(0, memcmp(a, b, sizeof(a)));
}

TEST(DiskModel, ReadCompletesAfterServiceTime) {
  sim::EventQueue events;
  DiskGeometry geo;
  geo.request_overhead = sim::Microseconds(100);
  geo.bandwidth_bps = 100'000'000;  // 100 MB/s.
  DiskModel disk(&events, geo);
  Catcher done(&disk);

  disk.SubmitRead(0, 4096, 1);
  // 4 KiB at 100 MB/s is ~41 us of media time: the fixed overhead
  // dominates, so completion lands at 100 us.
  events.AdvanceTo(sim::Microseconds(99));
  EXPECT_TRUE(done.cookies.empty());
  events.AdvanceTo(sim::Microseconds(101));
  EXPECT_EQ(done.cookies.size(), 1u);
}

TEST(DiskModel, LargeReadLimitedByBandwidth) {
  sim::EventQueue events;
  DiskGeometry geo;
  geo.request_overhead = sim::Microseconds(100);
  geo.bandwidth_bps = 100'000'000;
  DiskModel disk(&events, geo);
  Catcher done(&disk);

  disk.SubmitRead(0, 1 << 20, 1);  // 1 MiB: ~10.5 ms of media time.
  events.AdvanceTo(sim::Milliseconds(10));
  EXPECT_TRUE(done.cookies.empty());
  events.AdvanceTo(sim::Milliseconds(11));
  EXPECT_EQ(done.cookies.size(), 1u);
}

TEST(DiskModel, RequestsServicedInOrder) {
  sim::EventQueue events;
  DiskGeometry geo;
  geo.request_overhead = sim::Microseconds(100);
  DiskModel disk(&events, geo);
  Catcher done(&disk);

  disk.SubmitRead(0, 512, 1);
  disk.SubmitRead(512, 512, 2);
  // Second request queues behind the first: 200 us total.
  events.AdvanceTo(sim::Microseconds(150));
  EXPECT_EQ(done.cookies.size(), 1u);
  events.AdvanceTo(sim::Microseconds(250));
  ASSERT_EQ(done.cookies.size(), 2u);
  EXPECT_EQ(done.cookies, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(disk.completed_requests(), 2u);
}

TEST(DiskModel, WritePersists) {
  sim::EventQueue events;
  DiskModel disk(&events, DiskGeometry{});
  Catcher done(&disk);
  const std::uint8_t data[8] = {9, 8, 7, 6, 5, 4, 3, 2};
  disk.SubmitWrite(4096, data, sizeof(data), 7);
  events.AdvanceTo(sim::Seconds(1));
  ASSERT_EQ(done.cookies.size(), 1u);
  std::uint8_t out[8] = {};
  disk.ReadContent(4096, out, sizeof(out));
  EXPECT_EQ(0, memcmp(data, out, 8));
}

TEST(DiskModel, ReadHandlerDeliversData) {
  sim::EventQueue events;
  DiskModel disk(&events, DiskGeometry{});
  Catcher done(&disk);
  const char msg[] = "payload";
  disk.WriteContent(0, msg, sizeof(msg));
  disk.SubmitRead(0, sizeof(msg), 3);
  events.AdvanceTo(sim::Seconds(1));
  ASSERT_EQ(done.cookies.size(), 1u);
  EXPECT_STREQ(reinterpret_cast<const char*>(done.last_data.data()),
               "payload");
}

// In-flight requests survive a snapshot/restore cycle: the pending table
// carries the request parameters and the tagged completion event re-binds
// to the twin's Fire path.
TEST(DiskModel, PendingRequestRoundTrip) {
  DiskGeometry geo;
  geo.request_overhead = sim::Microseconds(100);

  sim::EventQueue events;
  DiskModel disk(&events, geo);
  Catcher done(&disk);
  const char msg[] = "snapshot me";
  disk.WriteContent(0, msg, sizeof(msg));
  disk.SubmitRead(0, sizeof(msg), 11);
  disk.SubmitWrite(8192, reinterpret_cast<const std::uint8_t*>(msg),
                   sizeof(msg), 22);
  events.AdvanceTo(sim::Microseconds(50));  // Both still in flight.
  ASSERT_TRUE(done.cookies.empty());

  sim::Snapshot snap;
  ASSERT_EQ(disk.SaveState(snap.Section("disk", 1)), Status::kSuccess);
  ASSERT_EQ(events.SaveState(snap.Section("events", 1)), Status::kSuccess);

  // Twin: identical construction, then overlay the saved state.
  sim::EventQueue twin_events;
  DiskModel twin(&twin_events, geo);
  Catcher twin_done(&twin);
  sim::SnapReader dr = snap.Open("disk", 1);
  ASSERT_EQ(twin.LoadState(dr), Status::kSuccess);
  ASSERT_EQ(dr.Finish(), Status::kSuccess);
  sim::SnapReader er = snap.Open("events", 1);
  ASSERT_EQ(twin_events.LoadState(er), Status::kSuccess);
  ASSERT_EQ(er.Finish(), Status::kSuccess);
  EXPECT_EQ(twin.pending_requests(), 2u);

  // Both copies run to completion and agree exactly.
  events.AdvanceTo(sim::Seconds(1));
  twin_events.AdvanceTo(sim::Seconds(1));
  ASSERT_EQ(done.cookies.size(), 2u);
  ASSERT_EQ(twin_done.cookies.size(), 2u);
  EXPECT_EQ(done.cookies, twin_done.cookies);
  EXPECT_EQ(done.last_data, twin_done.last_data);
  char out[sizeof(msg)] = {};
  twin.ReadContent(8192, out, sizeof(msg));
  EXPECT_STREQ(out, "snapshot me");
}

}  // namespace
}  // namespace nova::hw
