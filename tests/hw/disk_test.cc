#include "src/hw/disk.h"

#include <gtest/gtest.h>

namespace nova::hw {
namespace {

TEST(DiskModel, ContentRoundTrip) {
  sim::EventQueue events;
  DiskModel disk(&events, DiskGeometry{});
  const char data[] = "hello disk";
  disk.WriteContent(12345, data, sizeof(data));
  char out[sizeof(data)] = {};
  disk.ReadContent(12345, out, sizeof(data));
  EXPECT_STREQ(out, "hello disk");
}

TEST(DiskModel, UnwrittenSectorsDeterministic) {
  sim::EventQueue events;
  DiskModel disk(&events, DiskGeometry{});
  std::uint8_t a[64], b[64];
  disk.ReadContent(777777, a, sizeof(a));
  disk.ReadContent(777777, b, sizeof(b));
  EXPECT_EQ(0, memcmp(a, b, sizeof(a)));
}

TEST(DiskModel, ReadCompletesAfterServiceTime) {
  sim::EventQueue events;
  DiskGeometry geo;
  geo.request_overhead = sim::Microseconds(100);
  geo.bandwidth_bps = 100'000'000;  // 100 MB/s.
  DiskModel disk(&events, geo);

  std::vector<std::uint8_t> buf(4096);
  bool done = false;
  disk.SubmitRead(0, buf.size(), buf.data(), [&](Status) { done = true; });
  // 4 KiB at 100 MB/s is ~41 us of media time: the fixed overhead
  // dominates, so completion lands at 100 us.
  events.AdvanceTo(sim::Microseconds(99));
  EXPECT_FALSE(done);
  events.AdvanceTo(sim::Microseconds(101));
  EXPECT_TRUE(done);
}

TEST(DiskModel, LargeReadLimitedByBandwidth) {
  sim::EventQueue events;
  DiskGeometry geo;
  geo.request_overhead = sim::Microseconds(100);
  geo.bandwidth_bps = 100'000'000;
  DiskModel disk(&events, geo);

  std::vector<std::uint8_t> buf(1 << 20);  // 1 MiB: ~10.5 ms of media time.
  bool done = false;
  disk.SubmitRead(0, buf.size(), buf.data(), [&](Status) { done = true; });
  events.AdvanceTo(sim::Milliseconds(10));
  EXPECT_FALSE(done);
  events.AdvanceTo(sim::Milliseconds(11));
  EXPECT_TRUE(done);
}

TEST(DiskModel, RequestsServicedInOrder) {
  sim::EventQueue events;
  DiskGeometry geo;
  geo.request_overhead = sim::Microseconds(100);
  DiskModel disk(&events, geo);

  std::vector<std::uint8_t> buf(512);
  std::vector<int> order;
  disk.SubmitRead(0, 512, buf.data(), [&](Status) { order.push_back(1); });
  disk.SubmitRead(512, 512, buf.data(), [&](Status) { order.push_back(2); });
  // Second request queues behind the first: 200 us total.
  events.AdvanceTo(sim::Microseconds(150));
  EXPECT_EQ(order.size(), 1u);
  events.AdvanceTo(sim::Microseconds(250));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(disk.completed_requests(), 2u);
}

TEST(DiskModel, WritePersists) {
  sim::EventQueue events;
  DiskModel disk(&events, DiskGeometry{});
  const std::uint8_t data[8] = {9, 8, 7, 6, 5, 4, 3, 2};
  bool done = false;
  disk.SubmitWrite(4096, data, sizeof(data), [&](Status) { done = true; });
  events.AdvanceTo(sim::Seconds(1));
  ASSERT_TRUE(done);
  std::uint8_t out[8] = {};
  disk.ReadContent(4096, out, sizeof(out));
  EXPECT_EQ(0, memcmp(data, out, 8));
}

TEST(DiskModel, ReadCallbackDeliversData) {
  sim::EventQueue events;
  DiskModel disk(&events, DiskGeometry{});
  const char msg[] = "payload";
  disk.WriteContent(0, msg, sizeof(msg));
  std::vector<std::uint8_t> buf(sizeof(msg));
  bool done = false;
  disk.SubmitRead(0, buf.size(), buf.data(), [&](Status) { done = true; });
  events.AdvanceTo(sim::Seconds(1));
  ASSERT_TRUE(done);
  EXPECT_STREQ(reinterpret_cast<char*>(buf.data()), "payload");
}

}  // namespace
}  // namespace nova::hw
