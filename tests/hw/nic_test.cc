#include "src/hw/nic.h"

#include <gtest/gtest.h>

#include <cstring>

#include "src/hw/irq.h"

namespace nova::hw {
namespace {

class NicTest : public ::testing::Test {
 protected:
  static constexpr PhysAddr kRing = 0x10000;
  static constexpr PhysAddr kBufs = 0x20000;
  static constexpr std::uint32_t kGsi = 9;
  static constexpr std::uint32_t kRingEntries = 8;

  NicTest()
      : mem_(64 << 20),
        iommu_(&mem_, true),
        nic_(5, &iommu_, &irq_, kGsi, &events_) {
    irq_.Configure(kGsi, 0, 41);
    irq_.Unmask(kGsi);
    iommu_.AllowGsi(5, kGsi);
    // Driver bring-up: descriptor ring with per-descriptor buffers.
    for (std::uint32_t i = 0; i < kRingEntries; ++i) {
      nic::RxDescriptor d{};
      d.buffer = kBufs + i * 0x4000;
      (void)mem_.Write(kRing + i * 16, &d, sizeof(d));
    }
    (void)nic_.MmioWrite(nic::kRdbal, 4, kRing);
    (void)nic_.MmioWrite(nic::kRdlen, 4, kRingEntries * 16);
    (void)nic_.MmioWrite(nic::kRdh, 4, 0);
    (void)nic_.MmioWrite(nic::kRdt, 4, kRingEntries - 1);  // Hardware owns 0..6.
    (void)nic_.MmioWrite(nic::kIms, 4, nic::kIcrRxt0);
    (void)nic_.MmioWrite(nic::kRctl, 4, nic::kRctlEnable);
  }

  std::vector<std::uint8_t> Frame(std::uint32_t size, std::uint8_t fill) {
    return std::vector<std::uint8_t>(size, fill);
  }

  sim::EventQueue events_;
  PhysMem mem_;
  Iommu iommu_;
  IrqChip irq_;
  Nic nic_;
};

TEST_F(NicTest, ReceiveWritesDescriptorAndBuffer) {
  auto frame = Frame(128, 0x5a);
  ASSERT_TRUE(nic_.Receive(frame.data(), frame.size()));

  nic::RxDescriptor d{};
  (void)mem_.Read(kRing, &d, sizeof(d));
  EXPECT_EQ(d.length, 128);
  EXPECT_TRUE(d.status & nic::kRxStatusDd);
  EXPECT_TRUE(d.status & nic::kRxStatusEop);
  EXPECT_EQ(mem_.ReadAs<std::uint8_t>(kBufs), 0x5a);
  EXPECT_EQ(nic_.MmioRead(nic::kRdh, 4), 1u);
  EXPECT_TRUE(irq_.HasPending(0));
}

TEST_F(NicTest, IcrReadClears) {
  auto frame = Frame(64, 1);
  nic_.Receive(frame.data(), frame.size());
  EXPECT_EQ(nic_.MmioRead(nic::kIcr, 4) & nic::kIcrRxt0, nic::kIcrRxt0);
  EXPECT_EQ(nic_.MmioRead(nic::kIcr, 4), 0u);  // Cleared by the read.
}

TEST_F(NicTest, RingFullDrops) {
  auto frame = Frame(64, 2);
  for (std::uint32_t i = 0; i < kRingEntries - 1; ++i) {
    EXPECT_TRUE(nic_.Receive(frame.data(), frame.size()));
  }
  // RDH caught up with RDT: the next frame is dropped.
  EXPECT_FALSE(nic_.Receive(frame.data(), frame.size()));
  EXPECT_EQ(nic_.packets_dropped(), 1u);
  // Software returns descriptors by advancing RDT.
  (void)nic_.MmioWrite(nic::kRdt, 4, 0);
  EXPECT_TRUE(nic_.Receive(frame.data(), frame.size()));
}

TEST_F(NicTest, DisabledReceiverDrops) {
  (void)nic_.MmioWrite(nic::kRctl, 4, 0);
  auto frame = Frame(64, 3);
  EXPECT_FALSE(nic_.Receive(frame.data(), frame.size()));
}

TEST_F(NicTest, MaskedInterruptDoesNotFire) {
  (void)nic_.MmioWrite(nic::kImc, 4, nic::kIcrRxt0);
  auto frame = Frame(64, 4);
  nic_.Receive(frame.data(), frame.size());
  EXPECT_FALSE(irq_.HasPending(0));
  EXPECT_EQ(nic_.interrupts_raised(), 0u);
}

TEST_F(NicTest, CoalescingLimitsInterruptRate) {
  // ITR in 256 ns units: 50 us minimum gap => max 20000 irq/s (§8.3).
  (void)nic_.MmioWrite(nic::kItr, 4, 50'000 / 256);
  auto frame = Frame(64, 5);

  // Burst of packets at 1 us spacing for 200 us: without coalescing this
  // would be 200 interrupts; with a 50 us ITR it is at most ~5.
  for (int i = 0; i < 200; ++i) {
    events_.AdvanceTo(sim::Microseconds(i));
    nic_.Receive(frame.data(), frame.size());
    (void)nic_.MmioWrite(nic::kRdt, 4, (nic_.MmioRead(nic::kRdh, 4) + kRingEntries - 1) %
                                     kRingEntries);
  }
  events_.AdvanceTo(sim::Microseconds(300));
  EXPECT_LE(nic_.interrupts_raised(), 7u);
  EXPECT_GE(nic_.interrupts_raised(), 3u);
  EXPECT_EQ(nic_.packets_received(), 200u);
}

TEST_F(NicTest, NetLinkGeneratesConfiguredRate) {
  NetLink link(&events_, &nic_);
  // 100 MBit/s with 1250-byte packets = 10000 packets/s.
  link.StartStream(100.0, 1250);
  // Keep the ring drained.
  for (int ms = 1; ms <= 10; ++ms) {
    events_.AdvanceTo(sim::Milliseconds(ms));
    (void)nic_.MmioWrite(nic::kRdt, 4, (nic_.MmioRead(nic::kRdh, 4) + kRingEntries - 1) %
                                     kRingEntries);
  }
  link.Stop();
  // 10 ms at 10000 packets/s = ~100 packets.
  EXPECT_NEAR(static_cast<double>(link.packets_sent()), 100.0, 3.0);
}

TEST_F(NicTest, WrapAroundRing) {
  auto frame = Frame(64, 6);
  for (int round = 0; round < 3; ++round) {
    for (std::uint32_t i = 0; i < kRingEntries - 1; ++i) {
      ASSERT_TRUE(nic_.Receive(frame.data(), frame.size()));
      (void)nic_.MmioWrite(nic::kRdt, 4,
                     (nic_.MmioRead(nic::kRdh, 4) + kRingEntries - 1) % kRingEntries);
    }
  }
  EXPECT_EQ(nic_.packets_received(), 3u * (kRingEntries - 1));
}

}  // namespace
}  // namespace nova::hw
