#include "src/hw/paging.h"

#include <gtest/gtest.h>

#include "src/hw/phys_mem.h"

namespace nova::hw {
namespace {

class PagingTest : public ::testing::TestWithParam<PagingMode> {
 protected:
  PagingTest() : mem_(256ull << 20), next_frame_(0x100000) {}

  PageTable::FrameAllocator Alloc() {
    return [this] {
      const PhysAddr f = next_frame_;
      next_frame_ += kPageSize;
      return f;
    };
  }

  PhysMem mem_;
  PhysAddr next_frame_;
};

TEST_P(PagingTest, MapWalkRoundTrip) {
  PageTable pt(&mem_, GetParam(), 0x1000);
  ASSERT_EQ(pt.Map(0x40000000, 0x200000, kPageSize,
                   pte::kWritable | pte::kUser, Alloc()),
            Status::kSuccess);
  const WalkResult r = pt.Walk(0x40000123, Access{}, false);
  ASSERT_EQ(r.status, Status::kSuccess);
  EXPECT_EQ(r.pa, 0x200123u);
  EXPECT_EQ(r.page_size, kPageSize);
  EXPECT_EQ(r.accesses, Levels(GetParam()));
}

TEST_P(PagingTest, UnmappedFaultsNotPresent) {
  PageTable pt(&mem_, GetParam(), 0x1000);
  const WalkResult r = pt.Walk(0x12345000, Access{.write = true}, false);
  EXPECT_EQ(r.status, Status::kMemoryFault);
  EXPECT_FALSE(r.fault.present);
  EXPECT_TRUE(r.fault.write);
}

TEST_P(PagingTest, WriteToReadOnlyFaults) {
  PageTable pt(&mem_, GetParam(), 0x1000);
  ASSERT_EQ(pt.Map(0x5000, 0x9000, kPageSize, pte::kUser, Alloc()),
            Status::kSuccess);
  EXPECT_EQ(pt.Walk(0x5000, Access{.write = false}, false).status, Status::kSuccess);
  const WalkResult r = pt.Walk(0x5000, Access{.write = true}, false);
  EXPECT_EQ(r.status, Status::kMemoryFault);
  EXPECT_TRUE(r.fault.present);  // Protection violation, not a miss.
}

TEST_P(PagingTest, UserBitEnforced) {
  PageTable pt(&mem_, GetParam(), 0x1000);
  ASSERT_EQ(pt.Map(0x6000, 0xa000, kPageSize, pte::kWritable, Alloc()),
            Status::kSuccess);
  EXPECT_EQ(pt.Walk(0x6000, Access{.user = false}, false).status, Status::kSuccess);
  EXPECT_EQ(pt.Walk(0x6000, Access{.user = true}, false).status,
            Status::kMemoryFault);
}

TEST_P(PagingTest, LargePageMapping) {
  const std::uint64_t large = LargePageSize(GetParam());
  PageTable pt(&mem_, GetParam(), 0x1000);
  ASSERT_EQ(pt.Map(large * 4, large * 8, large, pte::kWritable | pte::kUser, Alloc()),
            Status::kSuccess);
  const WalkResult r = pt.Walk(large * 4 + 0xabc, Access{}, false);
  ASSERT_EQ(r.status, Status::kSuccess);
  EXPECT_EQ(r.pa, large * 8 + 0xabc);
  EXPECT_EQ(r.page_size, large);
  // A superpage walk touches one fewer level than a 4 KiB walk.
  EXPECT_EQ(r.accesses, Levels(GetParam()) - 1);
}

TEST_P(PagingTest, MisalignedLargeMapRejected) {
  const std::uint64_t large = LargePageSize(GetParam());
  PageTable pt(&mem_, GetParam(), 0x1000);
  EXPECT_EQ(pt.Map(large + kPageSize, 0, large, 0, Alloc()), Status::kBadParameter);
  EXPECT_EQ(pt.Map(large, kPageSize, large, 0, Alloc()), Status::kBadParameter);
  EXPECT_EQ(pt.Map(0, 0, 12345, 0, Alloc()), Status::kBadParameter);
}

TEST_P(PagingTest, AccessedDirtyBits) {
  PageTable pt(&mem_, GetParam(), 0x1000);
  ASSERT_EQ(pt.Map(0x7000, 0xb000, kPageSize, pte::kWritable | pte::kUser, Alloc()),
            Status::kSuccess);
  // Read walk sets A only.
  WalkResult r = pt.Walk(0x7000, Access{}, /*set_ad=*/true);
  ASSERT_EQ(r.status, Status::kSuccess);
  EXPECT_TRUE(r.pte & pte::kAccessed);
  EXPECT_FALSE(r.pte & pte::kDirty);
  // Write walk sets D.
  r = pt.Walk(0x7000, Access{.write = true}, /*set_ad=*/true);
  ASSERT_EQ(r.status, Status::kSuccess);
  EXPECT_TRUE(r.pte & pte::kDirty);
}

TEST_P(PagingTest, UnmapRemovesMapping) {
  PageTable pt(&mem_, GetParam(), 0x1000);
  ASSERT_EQ(pt.Map(0x8000, 0xc000, kPageSize, pte::kUser, Alloc()), Status::kSuccess);
  EXPECT_EQ(pt.Walk(0x8000, Access{}, false).status, Status::kSuccess);
  EXPECT_EQ(pt.Unmap(0x8000), Status::kSuccess);
  EXPECT_EQ(pt.Walk(0x8000, Access{}, false).status, Status::kMemoryFault);
  EXPECT_EQ(pt.Unmap(0x8000), Status::kSuccess);  // Idempotent.
}

TEST_P(PagingTest, RemapReplacesTranslation) {
  PageTable pt(&mem_, GetParam(), 0x1000);
  ASSERT_EQ(pt.Map(0x9000, 0xd000, kPageSize, pte::kUser, Alloc()), Status::kSuccess);
  ASSERT_EQ(pt.Map(0x9000, 0xe000, kPageSize, pte::kUser, Alloc()), Status::kSuccess);
  EXPECT_EQ(pt.Walk(0x9000, Access{}, false).pa, 0xe000u);
}

INSTANTIATE_TEST_SUITE_P(Formats, PagingTest,
                         ::testing::Values(PagingMode::kTwoLevel,
                                           PagingMode::kFourLevel),
                         [](const auto& info_param) {
                           return info_param.param == PagingMode::kTwoLevel
                                      ? "TwoLevel"
                                      : "FourLevel";
                         });

TEST(Paging, FourLevelCoversHighAddresses) {
  PhysMem mem(64 << 20);
  PhysAddr next = 0x100000;
  PageTable pt(&mem, PagingMode::kFourLevel, 0x1000);
  const VirtAddr high = 0x7f00'1234'5000ull;
  ASSERT_EQ(pt.Map(high, 0x200000, kPageSize, pte::kUser, [&] {
              const PhysAddr f = next;
              next += kPageSize;
              return f;
            }),
            Status::kSuccess);
  EXPECT_EQ(pt.Walk(high + 0x10, Access{}, false).pa, 0x200010u);
}

}  // namespace
}  // namespace nova::hw
