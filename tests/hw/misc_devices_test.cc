// The smaller platform pieces: UART, platform timer, bus routing, machine
// time synchronization, CPU utilization accounting.
#include <gtest/gtest.h>

#include "src/hw/machine.h"
#include "src/hw/timer_dev.h"
#include "src/hw/uart.h"

namespace nova::hw {
namespace {

TEST(Uart, CollectsOutputBytes) {
  Uart uart(1);
  for (const char c : std::string("hello")) {
    (void)uart.PioWrite(uart::kPortBase, 1, static_cast<std::uint8_t>(c));
  }
  EXPECT_EQ(uart.output(), "hello");
  EXPECT_EQ(uart.PioRead(uart::kPortBase + uart::kLsr, 1), uart::kLsrTxEmpty);
  uart.ClearOutput();
  EXPECT_TRUE(uart.output().empty());
}

TEST(PlatformTimer, PeriodicTicksAssertGsi) {
  sim::EventQueue events;
  IrqChip chip;
  chip.Configure(0, 0, 32);
  chip.Unmask(0);
  PlatformTimer timer(2, &chip, 0, &events);
  (void)timer.Start(sim::Milliseconds(1));
  events.AdvanceTo(sim::Milliseconds(10));
  EXPECT_EQ(timer.ticks(), 10u);
  EXPECT_TRUE(chip.HasPending(0));
}

TEST(PlatformTimer, PioProgrammingInterface) {
  sim::EventQueue events;
  IrqChip chip;
  chip.Configure(0, 0, 32);
  chip.Unmask(0);
  PlatformTimer timer(2, &chip, 0, &events);
  // Program 4000 us via the two-port handshake.
  (void)timer.PioWrite(timer::kPortPeriodLo, 1, 4000 & 0xffff);
  (void)timer.PioWrite(timer::kPortPeriodHi, 1, 4000 >> 16);
  events.AdvanceTo(sim::Milliseconds(20));
  EXPECT_EQ(timer.ticks(), 5u);
  EXPECT_EQ(timer.PioRead(timer::kPortControl, 1), 1u);
  // Stop.
  (void)timer.PioWrite(timer::kPortControl, 1, 0);
  events.AdvanceTo(sim::Milliseconds(40));
  EXPECT_EQ(timer.ticks(), 5u);
  EXPECT_EQ(timer.PioRead(timer::kPortControl, 1), 0u);
}

TEST(PlatformTimer, RestartInvalidatesOldSchedule) {
  sim::EventQueue events;
  IrqChip chip;
  PlatformTimer timer(2, &chip, 0, &events);
  (void)timer.Start(sim::Milliseconds(1));
  (void)timer.Start(sim::Milliseconds(10));  // Reprogram before first tick.
  events.AdvanceTo(sim::Milliseconds(9));
  EXPECT_EQ(timer.ticks(), 0u);  // Old 1 ms schedule was cancelled.
  events.AdvanceTo(sim::Milliseconds(21));
  EXPECT_EQ(timer.ticks(), 2u);
}

class ProbeDevice : public Device {
 public:
  ProbeDevice() : Device(9, "probe") {}
  std::uint64_t MmioRead(std::uint64_t off, unsigned) override { return off * 2; }
  void MmioWrite(std::uint64_t off, unsigned, std::uint64_t v) override {
    last = {off, v};
  }
  std::uint32_t PioRead(std::uint16_t port, unsigned) override { return port + 1; }
  void PioWrite(std::uint16_t port, unsigned, std::uint32_t v) override {
    last = {port, v};
  }
  std::pair<std::uint64_t, std::uint64_t> last{0, 0};
};

TEST(Bus, RoutesAndRejectsOverlaps) {
  Bus bus;
  ProbeDevice a, b;
  ASSERT_EQ(bus.RegisterMmio(0x1000, 0x100, &a), Status::kSuccess);
  EXPECT_EQ(bus.RegisterMmio(0x1080, 0x100, &b), Status::kBusy);  // Overlap.
  ASSERT_EQ(bus.RegisterMmio(0x2000, 0x100, &b), Status::kSuccess);
  ASSERT_EQ(bus.RegisterPio(0x100, 8, &a), Status::kSuccess);
  EXPECT_EQ(bus.RegisterPio(0x104, 8, &b), Status::kBusy);

  std::uint64_t v = 0;
  EXPECT_EQ(bus.MmioRead(0x1010, 4, &v), Status::kSuccess);
  EXPECT_EQ(v, 0x20u);  // Offset within the window.
  EXPECT_EQ(bus.MmioRead(0x3000, 4, &v), Status::kMemoryFault);
  EXPECT_EQ(bus.MmioWrite(0x2004, 4, 7), Status::kSuccess);
  EXPECT_EQ(b.last.first, 4u);

  std::uint32_t pv = 0;
  EXPECT_EQ(bus.PioRead(0x101, 4, &pv), Status::kSuccess);
  EXPECT_EQ(pv, 0x102u);
  EXPECT_EQ(bus.PioRead(0x500, 4, &pv), Status::kBadDevice);
  EXPECT_EQ(pv, 0xffffffffu);  // Floating bus.
}

TEST(Machine, SkipToNextEventAdvancesAllCpus) {
  Machine machine(MachineConfig{.cpus = {&CoreI7_920(), &PhenomX3_8450()},
                                .ram_size = 64ull << 20});
  bool fired = false;
  machine.events().ScheduleAt(sim::Milliseconds(5), [&] { fired = true; });
  EXPECT_TRUE(machine.SkipToNextEvent());
  EXPECT_TRUE(fired);
  EXPECT_GE(machine.cpu(0).NowPs(), sim::Milliseconds(5));
  EXPECT_GE(machine.cpu(1).NowPs(), sim::Milliseconds(5));
  EXPECT_FALSE(machine.SkipToNextEvent());
}

TEST(Cpu, UtilizationTracksIdlePeriods) {
  Machine machine(MachineConfig{.cpus = {&CoreI7_920()}, .ram_size = 64ull << 20});
  Cpu& cpu = machine.cpu(0);
  cpu.ResetUtilization();
  // 1 ms busy.
  cpu.Charge(cpu.model().frequency.PicosToCycles(sim::Milliseconds(1)));
  // 1 ms idle.
  cpu.SetIdle(true);
  cpu.AdvanceToPs(sim::Milliseconds(2));
  cpu.SetIdle(false);
  EXPECT_NEAR(cpu.Utilization(), 0.5, 0.01);
}

TEST(CpuModels, TableOneInventory) {
  // The six processors of Table 1, with the properties the evaluation
  // depends on.
  EXPECT_EQ(AllModels().size(), 6u);
  EXPECT_EQ(Opteron2212().host_paging, PagingMode::kTwoLevel);
  EXPECT_EQ(CoreI7_920().host_paging, PagingMode::kFourLevel);
  EXPECT_TRUE(CoreI7_920().has_guest_tlb_tags);       // VPID.
  EXPECT_FALSE(CoreI7_920_NoVpid().has_guest_tlb_tags);
  EXPECT_TRUE(Phenom9550().has_guest_tlb_tags);       // ASID.
  EXPECT_FALSE(Core2DuoE8400().has_guest_tlb_tags);   // Pre-Nehalem Intel.
  EXPECT_EQ(Opteron2212().vmread, 0u);                // VMCB is memory.
  EXPECT_GT(CoreDuoT2500().vmread, 0u);
  // Transition costs fall with each Intel generation (§8.4).
  EXPECT_GT(CoreDuoT2500().vm_exit + CoreDuoT2500().vm_resume,
            Core2DuoE8400().vm_exit + Core2DuoE8400().vm_resume);
  EXPECT_GT(Core2DuoE8400().vm_exit + Core2DuoE8400().vm_resume,
            CoreI7_920().vm_exit + CoreI7_920().vm_resume);
  EXPECT_EQ(CoreI7_920().frequency.khz(), 2'670'000u);
}

}  // namespace
}  // namespace nova::hw
