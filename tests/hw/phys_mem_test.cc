#include "src/hw/phys_mem.h"

#include <gtest/gtest.h>

namespace nova::hw {
namespace {

TEST(PhysMem, ReadZeroBeforeWrite) {
  PhysMem mem(1 << 20);
  EXPECT_EQ(mem.Read64(0x1000), 0u);
  EXPECT_EQ(mem.resident_frames(), 0u);  // Reads do not materialize frames.
}

TEST(PhysMem, WriteReadRoundTrip) {
  PhysMem mem(1 << 20);
  EXPECT_EQ(mem.Write64(0x2008, 0xdeadbeefcafebabeull), Status::kSuccess);
  EXPECT_EQ(mem.Read64(0x2008), 0xdeadbeefcafebabeull);
  EXPECT_EQ(mem.resident_frames(), 1u);
}

TEST(PhysMem, CrossPageAccess) {
  PhysMem mem(1 << 20);
  const std::uint8_t data[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(mem.Write(kPageSize - 4, data, 8), Status::kSuccess);
  std::uint8_t out[8] = {};
  EXPECT_EQ(mem.Read(kPageSize - 4, out, 8), Status::kSuccess);
  EXPECT_EQ(0, memcmp(data, out, 8));
  EXPECT_EQ(mem.resident_frames(), 2u);
}

TEST(PhysMem, OutOfBoundsFaults) {
  PhysMem mem(1 << 20);
  std::uint8_t buf[16];
  EXPECT_EQ(mem.Read((1 << 20), buf, 1), Status::kMemoryFault);
  EXPECT_EQ(mem.Read((1 << 20) - 8, buf, 16), Status::kMemoryFault);
  EXPECT_EQ(mem.Write((1 << 20) - 1, buf, 2), Status::kMemoryFault);
  EXPECT_EQ(mem.Write((1 << 20) - 1, buf, 1), Status::kSuccess);
}

TEST(PhysMem, ZeroClearsRange) {
  PhysMem mem(1 << 20);
  (void)mem.Write64(0x3000, ~0ull);
  (void)mem.Write64(0x3ff8, ~0ull);
  EXPECT_EQ(mem.Zero(0x3000, kPageSize), Status::kSuccess);
  EXPECT_EQ(mem.Read64(0x3000), 0u);
  EXPECT_EQ(mem.Read64(0x3ff8), 0u);
}

TEST(PhysMem, ContainsChecks) {
  PhysMem mem(0x10000);
  EXPECT_TRUE(mem.Contains(0, 0x10000));
  EXPECT_FALSE(mem.Contains(0, 0x10001));
  EXPECT_FALSE(mem.Contains(0x10000, 1));
  EXPECT_TRUE(mem.Contains(0xffff, 1));
}

}  // namespace
}  // namespace nova::hw
