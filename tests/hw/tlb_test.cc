#include "src/hw/tlb.h"

#include <gtest/gtest.h>

namespace nova::hw {
namespace {

constexpr std::uint64_t k2M = 2ull << 20;

TEST(Tlb, MissThenHit) {
  Tlb tlb(16, 4);
  EXPECT_FALSE(tlb.Lookup(kHostTag, 0x1000, Access{}).has_value());
  (void)tlb.Insert(kHostTag, 0x1000, 0x5000, kPageSize, true, true, true);
  const auto hit = tlb.Lookup(kHostTag, 0x1234, Access{});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 0x5234u);
  EXPECT_EQ(tlb.hits().value(), 1u);
  EXPECT_EQ(tlb.misses().value(), 1u);
}

TEST(Tlb, TagsIsolate) {
  Tlb tlb(16, 4);
  (void)tlb.Insert(1, 0x1000, 0x5000, kPageSize, true, true, true);
  EXPECT_FALSE(tlb.Lookup(2, 0x1000, Access{}).has_value());
  EXPECT_TRUE(tlb.Lookup(1, 0x1000, Access{}).has_value());
}

TEST(Tlb, WriteToCleanEntryMisses) {
  Tlb tlb(16, 4);
  // Installed by a read walk: not dirty.
  (void)tlb.Insert(kHostTag, 0x1000, 0x5000, kPageSize, true, true, /*dirty=*/false);
  EXPECT_TRUE(tlb.Lookup(kHostTag, 0x1000, Access{.write = false}).has_value());
  EXPECT_FALSE(tlb.Lookup(kHostTag, 0x1000, Access{.write = true}).has_value());
  // Re-walked with dirty set: write hits now.
  (void)tlb.Insert(kHostTag, 0x1000, 0x5000, kPageSize, true, true, /*dirty=*/true);
  EXPECT_TRUE(tlb.Lookup(kHostTag, 0x1000, Access{.write = true}).has_value());
}

TEST(Tlb, ReadOnlyEntryRejectsWrites) {
  Tlb tlb(16, 4);
  (void)tlb.Insert(kHostTag, 0x1000, 0x5000, kPageSize, /*writable=*/false, true, true);
  EXPECT_FALSE(tlb.Lookup(kHostTag, 0x1000, Access{.write = true}).has_value());
}

TEST(Tlb, SupervisorEntryRejectsUser) {
  Tlb tlb(16, 4);
  (void)tlb.Insert(kHostTag, 0x1000, 0x5000, kPageSize, true, /*user=*/false, true);
  EXPECT_FALSE(tlb.Lookup(kHostTag, 0x1000, Access{.user = true}).has_value());
  EXPECT_TRUE(tlb.Lookup(kHostTag, 0x1000, Access{.user = false}).has_value());
}

TEST(Tlb, LargePageCoversRange) {
  Tlb tlb(16, 4);
  (void)tlb.Insert(kHostTag, k2M, k2M * 3, k2M, true, true, true);
  const auto hit = tlb.Lookup(kHostTag, k2M + 0x12345, Access{});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, k2M * 3 + 0x12345);
}

TEST(Tlb, CapacityEvictsLru) {
  Tlb tlb(2, 2);
  (void)tlb.Insert(kHostTag, 0x1000, 0xa000, kPageSize, true, true, true);
  (void)tlb.Insert(kHostTag, 0x2000, 0xb000, kPageSize, true, true, true);
  // Touch the first entry so the second becomes LRU.
  EXPECT_TRUE(tlb.Lookup(kHostTag, 0x1000, Access{}).has_value());
  (void)tlb.Insert(kHostTag, 0x3000, 0xc000, kPageSize, true, true, true);
  EXPECT_TRUE(tlb.Lookup(kHostTag, 0x1000, Access{}).has_value());
  EXPECT_FALSE(tlb.Lookup(kHostTag, 0x2000, Access{}).has_value());  // Evicted.
  EXPECT_TRUE(tlb.Lookup(kHostTag, 0x3000, Access{}).has_value());
}

TEST(Tlb, SizeClassesIndependent) {
  Tlb tlb(1, 1);
  (void)tlb.Insert(kHostTag, 0x1000, 0xa000, kPageSize, true, true, true);
  (void)tlb.Insert(kHostTag, 0, k2M * 5, k2M, true, true, true);
  // Both survive: they occupy different arrays.
  EXPECT_TRUE(tlb.Lookup(kHostTag, 0x1000, Access{}).has_value());
  EXPECT_TRUE(tlb.Lookup(kHostTag, 0x100, Access{}).has_value());
}

TEST(Tlb, FlushTagOnlyAffectsTag) {
  Tlb tlb(16, 4);
  (void)tlb.Insert(1, 0x1000, 0xa000, kPageSize, true, true, true);
  (void)tlb.Insert(2, 0x1000, 0xb000, kPageSize, true, true, true);
  tlb.FlushTag(1);
  EXPECT_FALSE(tlb.Lookup(1, 0x1000, Access{}).has_value());
  EXPECT_TRUE(tlb.Lookup(2, 0x1000, Access{}).has_value());
}

TEST(Tlb, FlushNonGlobalKeepsGlobalEntries) {
  Tlb tlb(16, 4);
  (void)tlb.Insert(1, 0x1000, 0xa000, kPageSize, true, true, true, /*global=*/true);
  (void)tlb.Insert(1, 0x2000, 0xb000, kPageSize, true, true, true, /*global=*/false);
  tlb.FlushNonGlobal(1);
  EXPECT_TRUE(tlb.Lookup(1, 0x1000, Access{}).has_value());
  EXPECT_FALSE(tlb.Lookup(1, 0x2000, Access{}).has_value());
}

TEST(Tlb, FlushVaRemovesSingleTranslation) {
  Tlb tlb(16, 4);
  (void)tlb.Insert(1, 0x1000, 0xa000, kPageSize, true, true, true);
  (void)tlb.Insert(1, 0x2000, 0xb000, kPageSize, true, true, true);
  tlb.FlushVa(1, 0x1000);
  EXPECT_FALSE(tlb.Lookup(1, 0x1000, Access{}).has_value());
  EXPECT_TRUE(tlb.Lookup(1, 0x2000, Access{}).has_value());
}

TEST(Tlb, FlushAllEmpties) {
  Tlb tlb(16, 4);
  (void)tlb.Insert(1, 0x1000, 0xa000, kPageSize, true, true, true);
  (void)tlb.Insert(2, 0, k2M, k2M, true, true, true);
  tlb.FlushAll();
  EXPECT_EQ(tlb.size(), 0u);
  EXPECT_EQ(tlb.flushes().value(), 1u);
}

TEST(Tlb, EntryCountPerTag) {
  Tlb tlb(16, 4);
  (void)tlb.Insert(1, 0x1000, 0xa000, kPageSize, true, true, true);
  (void)tlb.Insert(1, 0x2000, 0xb000, kPageSize, true, true, true);
  (void)tlb.Insert(2, 0x3000, 0xc000, kPageSize, true, true, true);
  EXPECT_EQ(tlb.EntryCount(1), 2u);
  EXPECT_EQ(tlb.EntryCount(2), 1u);
}

}  // namespace
}  // namespace nova::hw
