// Property-style sweeps over the hardware substrate: randomized
// map/walk/unmap consistency for both page-table formats, TLB-vs-walk
// agreement, physical-memory read-back, and IOMMU translation integrity.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/guest/driver_ahci.h"
#include "src/guest/kernel.h"
#include "src/guest/workload_disk.h"
#include "src/hw/iommu.h"
#include "src/hw/paging.h"
#include "src/hw/tlb.h"
#include "src/root/supervisor.h"
#include "src/root/system.h"
#include "src/sim/fault.h"
#include "src/sim/rng.h"
#include "src/vmm/vmm.h"

namespace nova::hw {
namespace {

struct PagingCase {
  PagingMode mode;
  std::uint64_t seed;
};

class PagingProperty : public ::testing::TestWithParam<PagingCase> {};

TEST_P(PagingProperty, RandomMapWalkUnmapAgreesWithModel) {
  PhysMem mem(512ull << 20);
  PhysAddr next = 0x100000;
  const auto alloc = [&next] {
    const PhysAddr f = next;
    next += kPageSize;
    return f;
  };
  PageTable pt(&mem, GetParam().mode, 0x1000);
  sim::Rng rng(GetParam().seed);

  // Reference model: va page -> (pa, writable).
  std::map<std::uint64_t, std::pair<std::uint64_t, bool>> model;
  const std::uint64_t va_space =
      GetParam().mode == PagingMode::kTwoLevel ? (1ull << 32) : (1ull << 40);

  for (int step = 0; step < 400; ++step) {
    const std::uint64_t va = rng.Below(va_space / kPageSize) * kPageSize;
    const int action = static_cast<int>(rng.Below(3));
    if (action < 2) {
      const std::uint64_t pa = (0x10000 + rng.Below(1 << 16)) * kPageSize;
      const bool writable = rng.Chance(0.5);
      std::uint64_t flags = pte::kUser | (writable ? pte::kWritable : 0);
      // Avoid mapping 4K under an existing superpage from a previous run
      // (this test never creates superpages, so Map cannot return kBusy).
      ASSERT_EQ(pt.Map(va, pa, kPageSize, flags, alloc), Status::kSuccess);
      model[va] = {pa, writable};
    } else {
      (void)pt.Unmap(va);
      model.erase(va);
    }

    // Validate a random sample of the model each step.
    const std::uint64_t probe = rng.Below(va_space / kPageSize) * kPageSize;
    for (const std::uint64_t check : {va, probe}) {
      const std::uint64_t offset = rng.Below(kPageSize);
      const WalkResult r = pt.Walk(check + offset, Access{}, false);
      auto it = model.find(check);
      if (it == model.end()) {
        EXPECT_EQ(r.status, Status::kMemoryFault) << "va=" << std::hex << check;
      } else {
        ASSERT_EQ(r.status, Status::kSuccess) << "va=" << std::hex << check;
        EXPECT_EQ(r.pa, it->second.first + offset);
        const WalkResult w = pt.Walk(check, Access{.write = true}, false);
        EXPECT_EQ(Ok(w.status), it->second.second);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PagingProperty,
    ::testing::Values(PagingCase{PagingMode::kTwoLevel, 1},
                      PagingCase{PagingMode::kTwoLevel, 2},
                      PagingCase{PagingMode::kFourLevel, 1},
                      PagingCase{PagingMode::kFourLevel, 2},
                      PagingCase{PagingMode::kFourLevel, 3}),
    [](const auto& info) {
      return std::string(info.param.mode == PagingMode::kTwoLevel ? "TwoLevel"
                                                                  : "FourLevel") +
             "Seed" + std::to_string(info.param.seed);
    });

class TlbProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TlbProperty, NeverReturnsStaleOrWrongTranslation) {
  // Whatever the capacity, a TLB hit must agree with what was inserted,
  // and flushed entries must never resurface.
  const std::uint32_t capacity = GetParam();
  Tlb tlb(capacity, 4);
  sim::Rng rng(99);
  std::map<std::uint64_t, std::uint64_t> inserted;  // vpage -> ppage.

  for (int step = 0; step < 2000; ++step) {
    const std::uint64_t va = rng.Below(512) * kPageSize;
    const int action = static_cast<int>(rng.Below(10));
    if (action < 6) {
      const std::uint64_t pa = (rng.Below(1 << 20) + 1) * kPageSize;
      (void)tlb.Insert(1, va, pa, kPageSize, true, true, true);
      inserted[va] = pa;
    } else if (action < 8) {
      tlb.FlushVa(1, va);
      inserted.erase(va);
    } else if (action == 8) {
      tlb.FlushTag(1);
      inserted.clear();
    }
    // Probe: hits must match the reference exactly (misses are always
    // allowed — capacity eviction).
    const std::uint64_t probe = rng.Below(512) * kPageSize;
    if (const auto hit = tlb.Lookup(1, probe + 0x10, Access{})) {
      auto it = inserted.find(probe);
      ASSERT_NE(it, inserted.end()) << "stale hit for " << std::hex << probe;
      EXPECT_EQ(*hit, it->second + 0x10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, TlbProperty,
                         ::testing::Values(4u, 16u, 64u, 256u));

TEST(PhysMemProperty, RandomReadWriteRoundTrip) {
  PhysMem mem(64ull << 20);
  sim::Rng rng(7);
  std::map<std::uint64_t, std::uint64_t> model;
  for (int step = 0; step < 5000; ++step) {
    const std::uint64_t addr = rng.Below((64ull << 20) / 8 - 1) * 8;
    if (rng.Chance(0.6)) {
      const std::uint64_t value = rng.Next();
      ASSERT_EQ(mem.Write64(addr, value), Status::kSuccess);
      model[addr] = value;
    } else {
      auto it = model.find(addr);
      EXPECT_EQ(mem.Read64(addr), it == model.end() ? 0 : it->second);
    }
  }
}

// --- Randomized fault schedules vs. the kernel frame pool ---------------
// Property: however many times a VMM is killed and restarted, and whenever
// the crashes land, the kernel frame pool balances — every restart cycle
// ends with the same number of frames in use, and the final count matches
// a fault-free run.

struct FaultCycleResult {
  bool done = false;
  std::uint64_t completed = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t frames_end = 0;
  std::vector<std::uint64_t> frames_after_restart;
  // Kernel-memory quota balance: the root's donatable limit before the
  // VMM exists, after every kill/restart cycle, and at the end.
  std::uint64_t root_limit_start = 0;
  std::uint64_t root_limit_end = 0;
  std::vector<std::uint64_t> root_limit_after_restart;
  std::uint64_t vmm_used_end = 0;
  std::uint64_t vmm_limit_end = 0;
};

constexpr std::uint64_t kCycleRequests = 120;
// Every VMM in the sweep runs under a bounded kernel-memory quota, so the
// kill/restart cycles also exercise donation return on teardown.
constexpr std::uint64_t kVmmQuotaFrames = 512;

FaultCycleResult RunFaultCycles(std::uint64_t seed, std::uint64_t crashes,
                                std::uint32_t vmm_cpu = 0) {
  root::SystemConfig sc;
  // With the VMM on a secondary core, the disk server (core 0) is reached
  // by cross-core IPC and teardown crosses cores too.
  std::vector<const hw::CpuModel*> cpus(vmm_cpu + 1, &hw::CoreI7_920());
  sc.machine = hw::MachineConfig{.cpus = cpus, .ram_size = 512ull << 20};
  root::NovaSystem system(sc);
  services::DiskServer& server = system.StartDiskServer();

  // Crash times are drawn from the seed: spaced widely enough for the
  // supervisor to finish one recovery before the next crash activates.
  sim::Rng rng(seed);
  sim::FaultPlan plan(seed);
  for (std::uint64_t i = 0; i < crashes; ++i) {
    plan.Schedule({.at = sim::Milliseconds(1 + 2 * i) +
                         sim::Microseconds(rng.Below(900)),
                   .kind = sim::FaultKind::kVmmCrash,
                   .target = "a",
                   .count = 1,
                   .rate = 1.0});
  }
  plan.Arm(&system.machine.events());

  vmm::VmmConfig ca;
  ca.name = "a";
  ca.guest_mem_bytes = 32ull << 20;
  ca.first_cpu = vmm_cpu;
  ca.kmem_quota_frames = kVmmQuotaFrames;
  FaultCycleResult r;
  r.root_limit_start = system.hv.root_pd()->kmem().limit();
  auto vm_a = std::make_unique<vmm::Vmm>(&system.hv, system.root.get(), ca);
  vm_a->SetFaultPlan(&plan);
  vm_a->ConnectDiskServer(&server);

  guest::GuestLogicMux mux;
  mux.Attach(system.hv.engine(vmm_cpu));
  guest::GuestKernel gk(
      &system.machine.mem(),
      [&vm_a](std::uint64_t gpa) { return vm_a->GpaToHpa(gpa); }, &mux,
      guest::GuestKernelConfig{.mem_bytes = 32ull << 20});
  gk.BuildStandardHandlers();
  guest::GuestAhciDriver driver(
      &gk, guest::GuestAhciDriver::Config{
               .mmio_base = vmm::vahci::kMmioBase,
               .irq_vector = vmm::vahci::kVector,
               .read_ci =
                   [&vm_a]() -> std::uint32_t {
                 return static_cast<std::uint32_t>(vm_a->vahci().MmioRead(
                     vmm::vahci::kMmioBase + ahci::kPxCi, 4));
               },
               .handle_errors = true,
               .read_err =
                   [&vm_a]() -> std::uint32_t {
                 return static_cast<std::uint32_t>(vm_a->vahci().MmioRead(
                     vmm::vahci::kMmioBase + ahci::kPxVs, 4));
               }});
  guest::DiskWorkload workload(
      &gk, &driver,
      guest::DiskWorkload::Config{.block_bytes = 4096,
                                  .total_requests = kCycleRequests});
  gk.EmitBoot(workload.EmitMain());
  gk.Install();
  gk.PrimeState(vm_a->gstate());
  (void)vm_a->Start(vm_a->gstate().rip);

  root::VmmSupervisor::Config supc;
  supc.check_period_ps = sim::Microseconds(200);
  supc.stale_checks = 2;
  root::VmmSupervisor supervisor(&system.hv, system.root.get(), supc);

  std::function<void(const root::VmmSupervisor::RecoveryInfo&)> restart;
  restart = [&](const root::VmmSupervisor::RecoveryInfo& info) {
    server.CloseChannel(vm_a->disk_channel_id());
    vm_a.reset();
    vmm::VmmConfig cr = ca;
    cr.fixed_guest_base_page = info.guest_base_page;
    vm_a = std::make_unique<vmm::Vmm>(&system.hv, system.root.get(), cr);
    vm_a->SetFaultPlan(&plan);  // The replacement can crash again.
    vm_a->ConnectDiskServer(&server);
    (void)vm_a->Start(info.gstate.rip);
    vm_a->gstate() = info.gstate;
    vm_a->vahci().RestoreRegs(info.vahci_regs);
    vm_a->vahci().InjectAbort(driver.issued_mask());
    supervisor.Watch(vm_a.get(), restart);
    r.frames_after_restart.push_back(system.hv.FramesInUse());
    r.root_limit_after_restart.push_back(system.hv.root_pd()->kmem().limit());
  };
  supervisor.Watch(vm_a.get(), restart);

  system.hv.RunUntilCondition(
      [&] { return workload.done() && supervisor.recoveries() >= crashes; },
      sim::Seconds(30));
  r.done = workload.done();
  r.completed = workload.completed();
  r.recoveries = supervisor.recoveries();
  r.frames_end = system.hv.FramesInUse();
  r.root_limit_end = system.hv.root_pd()->kmem().limit();
  r.vmm_used_end = vm_a->vmm_pd()->kmem().used();
  r.vmm_limit_end = vm_a->vmm_pd()->kmem().limit();
  return r;
}

class FaultScheduleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultScheduleProperty, FramePoolBalancesAfterEveryKillRestartCycle) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng(seed ^ 0xfa);
  const std::uint64_t crashes = 1 + rng.Below(3);

  const FaultCycleResult clean = RunFaultCycles(seed, /*crashes=*/0);
  ASSERT_TRUE(clean.done);
  ASSERT_EQ(clean.recoveries, 0u);

  const FaultCycleResult faulted = RunFaultCycles(seed, crashes);
  ASSERT_TRUE(faulted.done);
  EXPECT_EQ(faulted.recoveries, crashes);
  EXPECT_EQ(faulted.completed, kCycleRequests);

  // Every kill/restart cycle balanced: no frame count ratchets upward.
  ASSERT_EQ(faulted.frames_after_restart.size(), crashes);
  for (const std::uint64_t frames : faulted.frames_after_restart) {
    EXPECT_EQ(frames, faulted.frames_after_restart.front());
  }
  EXPECT_EQ(faulted.frames_end, clean.frames_end);

  // The quota ledger balances the same way: each dead VMM returned its
  // full donation to the root before the replacement took it back, so
  // the root's donatable limit is identical after every cycle and equals
  // the clean run's. The live VMM never exceeds its bound.
  ASSERT_EQ(faulted.root_limit_after_restart.size(), crashes);
  for (const std::uint64_t limit : faulted.root_limit_after_restart) {
    EXPECT_EQ(limit, faulted.root_limit_start - kVmmQuotaFrames);
  }
  EXPECT_EQ(faulted.root_limit_end, clean.root_limit_end);
  EXPECT_EQ(faulted.root_limit_end, faulted.root_limit_start - kVmmQuotaFrames);
  EXPECT_EQ(faulted.vmm_limit_end, kVmmQuotaFrames);
  EXPECT_LE(faulted.vmm_used_end, faulted.vmm_limit_end);
}

TEST_P(FaultScheduleProperty, CrossCoreKillRestartKeepsLedgerBalanced) {
  // Same property, SMP shape: the VM runs on core 1 while the disk server
  // and the supervisor live on core 0, so every disk request is a
  // cross-core portal call and every kill/restart tears down and rebuilds
  // a domain whose execution contexts live on another core. The
  // kernel-memory quota ledger must balance exactly as in the single-core
  // sweep.
  const std::uint64_t seed = GetParam();
  sim::Rng rng(seed ^ 0xce);
  const std::uint64_t crashes = 1 + rng.Below(3);

  const FaultCycleResult clean = RunFaultCycles(seed, /*crashes=*/0, /*vmm_cpu=*/1);
  ASSERT_TRUE(clean.done);

  const FaultCycleResult faulted = RunFaultCycles(seed, crashes, /*vmm_cpu=*/1);
  ASSERT_TRUE(faulted.done);
  EXPECT_EQ(faulted.recoveries, crashes);
  EXPECT_EQ(faulted.completed, kCycleRequests);

  ASSERT_EQ(faulted.frames_after_restart.size(), crashes);
  for (const std::uint64_t frames : faulted.frames_after_restart) {
    EXPECT_EQ(frames, faulted.frames_after_restart.front());
  }
  EXPECT_EQ(faulted.frames_end, clean.frames_end);

  ASSERT_EQ(faulted.root_limit_after_restart.size(), crashes);
  for (const std::uint64_t limit : faulted.root_limit_after_restart) {
    EXPECT_EQ(limit, faulted.root_limit_start - kVmmQuotaFrames);
  }
  EXPECT_EQ(faulted.root_limit_end, clean.root_limit_end);
  EXPECT_EQ(faulted.root_limit_end, faulted.root_limit_start - kVmmQuotaFrames);
  EXPECT_EQ(faulted.vmm_limit_end, kVmmQuotaFrames);
  EXPECT_LE(faulted.vmm_used_end, faulted.vmm_limit_end);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultScheduleProperty,
                         ::testing::Values(3u, 11u, 42u));

TEST(IommuProperty, TranslationsNeverLeakAcrossDevices) {
  PhysMem mem(256ull << 20);
  Iommu iommu(&mem, true);
  PhysAddr next = 0x100000;
  const auto alloc = [&next] {
    const PhysAddr f = next;
    next += kPageSize;
    return f;
  };
  iommu.AttachDevice(1, 0x4000000);
  iommu.AttachDevice(2, 0x5000000);
  sim::Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t iova = rng.Below(1 << 12) * kPageSize;
    const std::uint64_t pa1 = (0x8000 + rng.Below(1 << 12)) * kPageSize;
    ASSERT_EQ(iommu.Map(1, iova, pa1, kPageSize, true, alloc), Status::kSuccess);
    // Device 2 has no mapping at this iova: its DMA must be rejected even
    // though device 1 can reach it.
    std::uint64_t probe = 0;
    EXPECT_EQ(iommu.DmaRead(2, iova, &probe, 8), Status::kDenied);
    const std::uint64_t value = rng.Next();
    ASSERT_EQ(iommu.DmaWrite(1, iova, &value, 8), Status::kSuccess);
    EXPECT_EQ(mem.Read64(pa1), value);
  }
}

}  // namespace
}  // namespace nova::hw
