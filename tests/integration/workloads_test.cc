// The evaluation workloads themselves, run short end-to-end: these guard
// the benchmark pipeline (fig5/fig6/fig7) against regressions.
#include <gtest/gtest.h>

#include "bench/common.h"
#include "src/guest/driver_nic.h"
#include "src/guest/workload_udp.h"

namespace nova::bench {
namespace {

guest::CompileWorkload::Config ShortCompile() {
  guest::CompileWorkload::Config w;
  w.processes = 2;
  w.ws_pages = 64;
  w.total_units = 400;
  w.compute_cycles = 8000;
  w.mem_bursts = 3;
  w.switch_every = 10;
  w.disk_every = 80;
  w.recycle_every = 200;
  return w;
}

TEST(CompileWorkload, RunsToCompletionNative) {
  RunConfig c;
  c.stack = StackKind::kNative;
  c.workload = ShortCompile();
  const RunResult r = RunCompile(c);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_LT(r.seconds, 10.0);
  EXPECT_GT(r.guest_insns, 1000u);
}

TEST(CompileWorkload, NovaSlowerThanNativeButClose) {
  RunConfig native;
  native.stack = StackKind::kNative;
  native.workload = ShortCompile();
  RunConfig nova_cfg = native;
  nova_cfg.stack = StackKind::kNova;

  const double native_s = RunCompile(native).seconds;
  const RunResult nova_r = RunCompile(nova_cfg);
  EXPECT_GT(nova_r.seconds, native_s);            // Virtualization costs.
  EXPECT_LT(nova_r.seconds, native_s * 1.5);  // ...but bounded (short run
                                              // amplifies per-exit share).
  EXPECT_GT(nova_r.exits, 0u);
  // Under nested paging there are no paging-related exits at all.
  EXPECT_EQ(nova_r.stats.Value("vTLB Fill"), 0u);
  EXPECT_EQ(nova_r.stats.Value("Guest Page Fault"), 0u);
}

TEST(CompileWorkload, ShadowPagingCostsMoreAndFillsVtlb) {
  RunConfig ept;
  ept.stack = StackKind::kNova;
  ept.workload = ShortCompile();
  RunConfig shadow = ept;
  shadow.mode = hw::TranslationMode::kShadow;

  const double ept_s = RunCompile(ept).seconds;
  const RunResult shadow_r = RunCompile(shadow);
  EXPECT_GT(shadow_r.seconds, ept_s * 1.05);
  EXPECT_GT(shadow_r.stats.Value("vTLB Fill"), 100u);
  EXPECT_GT(shadow_r.stats.Value("vTLB Flush"), 10u);
  // Every context switch was intercepted as a CR write.
  EXPECT_GE(shadow_r.stats.Value("CR Read/Write"),
            shadow_r.stats.Value("vTLB Flush"));
}

TEST(CompileWorkload, DeterministicAcrossRuns) {
  RunConfig c;
  c.stack = StackKind::kNova;
  c.workload = ShortCompile();
  const RunResult a = RunCompile(c);
  const RunResult b = RunCompile(c);
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.exits, b.exits);
  EXPECT_EQ(a.guest_insns, b.guest_insns);
}

TEST(UdpWorkload, ReceivesStreamBareMetal) {
  hw::Machine machine(hw::MachineConfig{.cpus = {&hw::CoreI7_920()},
                                        .ram_size = 256ull << 20,
                                        .iommu_present = false});
  root::Platform platform = root::SetupStandardPlatform(&machine, nullptr);
  machine.irq().Configure(root::kNicGsi, 0, 42);
  machine.irq().Unmask(root::kNicGsi);

  guest::BareMetalRunner runner(&machine);
  guest::GuestKernel gk(
      &machine.mem(), [](std::uint64_t gpa) { return gpa; }, &runner.mux(),
      guest::GuestKernelConfig{.mem_bytes = 128ull << 20});
  gk.BuildStandardHandlers();
  guest::GuestNicDriver driver(&gk, guest::GuestNicDriver::Config{
                                        .mmio_base = root::kNicMmioBase,
                                        .irq_vector = 42,
                                        .packet_bytes = 1472});
  guest::UdpWorkload workload(&gk, &driver);
  gk.EmitBoot(workload.EmitMain());
  gk.Install();
  gk.PrimeState(runner.gs());

  platform.link->StartStream(/*mbit=*/100, /*packet_bytes=*/1472);
  runner.RunUntil([&] { return workload.packets() >= 50; }, sim::Seconds(1));
  platform.link->Stop();

  EXPECT_GE(workload.packets(), 50u);
  EXPECT_EQ(platform.nic->packets_dropped(), 0u);
  // The payload copy landed in the application buffer.
  std::uint8_t first = 0;
  (void)machine.mem().Read(0x7a0000, &first, 1);
  EXPECT_EQ(first, 0xee);  // Frame header fill byte from the generator.
}

TEST(UdpWorkload, CoalescingLimitsInterruptRate) {
  hw::Machine machine(hw::MachineConfig{.cpus = {&hw::CoreI7_920()},
                                        .ram_size = 256ull << 20,
                                        .iommu_present = false});
  root::Platform platform = root::SetupStandardPlatform(&machine, nullptr);
  machine.irq().Configure(root::kNicGsi, 0, 42);
  machine.irq().Unmask(root::kNicGsi);
  guest::BareMetalRunner runner(&machine);
  guest::GuestKernel gk(
      &machine.mem(), [](std::uint64_t gpa) { return gpa; }, &runner.mux(),
      guest::GuestKernelConfig{.mem_bytes = 128ull << 20});
  gk.BuildStandardHandlers();
  guest::GuestNicDriver driver(&gk, guest::GuestNicDriver::Config{
                                        .mmio_base = root::kNicMmioBase,
                                        .irq_vector = 42,
                                        .packet_bytes = 64});
  guest::UdpWorkload workload(&gk, &driver);
  gk.EmitBoot(workload.EmitMain());
  gk.Install();
  gk.PrimeState(runner.gs());

  // 100 Mbit/s of 64-byte packets ~= 195 kpps; coalescing caps interrupts
  // near 20 k/s (§8.3).
  platform.link->StartStream(100, 64);
  runner.RunUntil([] { return false; }, sim::Milliseconds(100));
  platform.link->Stop();
  const double irq_rate = platform.nic->interrupts_raised() / 0.1;
  EXPECT_LT(irq_rate, 25'000);
  EXPECT_GT(workload.packets(), 10'000u);
}

}  // namespace
}  // namespace nova::bench
