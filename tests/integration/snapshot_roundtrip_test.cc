// Snapshot/restore round-trips: a scenario checkpointed mid-run and
// restored onto a twin must continue with a bit-identical trace digest —
// the snapshot is complete or it is nothing (DESIGN.md §13).
#include <gtest/gtest.h>

#include "bench/scenario.h"

namespace nova::bench {
namespace {

constexpr sim::PicoSeconds kDeadline = sim::Seconds(120);

RunConfig ShortConfig(std::uint64_t seed) {
  RunConfig c;
  c.stack = StackKind::kNova;
  c.workload.processes = 2;
  c.workload.ws_pages = 64;
  c.workload.total_units = 400;
  c.workload.compute_cycles = 8000;
  c.workload.mem_bursts = 3;
  c.workload.switch_every = 10;
  c.workload.disk_every = 80;
  c.workload.recycle_every = 200;
  c.workload.seed = seed;
  return c;
}

// Advance to a mid-run point: half the compile units retired.
void RunToMidpoint(CompileScenario& scn) {
  guest::CompileWorkload* w = &scn.workload();
  const std::uint64_t half = scn.config().workload.total_units / 2;
  scn.system().hv.RunUntilCondition(
      [w, half] { return w->units_done() >= half; }, kDeadline);
  ASSERT_FALSE(scn.done());
}

struct Tail {
  std::uint64_t digest = 0;
  std::uint64_t units = 0;
  std::uint64_t exits = 0;
  std::uint64_t page_faults = 0;
  std::uint64_t disk_reads = 0;
  double seconds = 0;
};

// Run the rest of the workload with the tracer on; the digest covers
// every event from this call to completion.
Tail FinishTraced(CompileScenario& scn) {
  sim::Tracer& tracer = scn.system().machine.tracer();
  tracer.Reset();
  tracer.set_enabled(true);
  scn.RunUntilDone(kDeadline);
  tracer.set_enabled(false);
  Tail t;
  t.digest = tracer.digest();
  t.units = scn.workload().units_done();
  t.exits = scn.vm().exits_handled();
  t.page_faults = scn.workload().page_faults_expected();
  t.disk_reads = scn.workload().disk_reads();
  t.seconds = static_cast<double>(scn.now()) /
              static_cast<double>(sim::kPicosPerSecond);
  return t;
}

class SnapshotRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SnapshotRoundTrip, RestoredTwinContinuesBitIdentically) {
  const RunConfig config = ShortConfig(GetParam());

  CompileScenario original(config);
  RunToMidpoint(original);
  sim::Snapshot snap;
  ASSERT_EQ(original.SaveState(snap), Status::kSuccess);
  // The wire encoding must survive encode/decode (what migration ships).
  sim::Snapshot shipped;
  ASSERT_EQ(shipped.Decode(snap.Encode()), Status::kSuccess);

  CompileScenario twin(config);
  ASSERT_EQ(twin.LoadState(shipped), Status::kSuccess);

  const Tail a = FinishTraced(original);
  const Tail b = FinishTraced(twin);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.units, b.units);
  EXPECT_EQ(a.exits, b.exits);
  EXPECT_EQ(a.page_faults, b.page_faults);
  EXPECT_EQ(a.disk_reads, b.disk_reads);
  EXPECT_EQ(a.seconds, b.seconds);
}

TEST_P(SnapshotRoundTrip, SaveLoadSaveIsByteIdentical) {
  const RunConfig config = ShortConfig(GetParam());

  CompileScenario original(config);
  RunToMidpoint(original);
  sim::Snapshot first;
  ASSERT_EQ(original.SaveState(first), Status::kSuccess);

  CompileScenario twin(config);
  ASSERT_EQ(twin.LoadState(first), Status::kSuccess);
  sim::Snapshot second;
  ASSERT_EQ(twin.SaveState(second), Status::kSuccess);
  // save ∘ load is the identity on the serialized state: restoring and
  // immediately re-checkpointing reproduces the snapshot byte for byte.
  EXPECT_EQ(first.Encode(), second.Encode());
}

INSTANTIATE_TEST_SUITE_P(MultiSeed, SnapshotRoundTrip,
                         ::testing::Values(42u, 7u, 1234u));

TEST(SnapshotRoundTrip, StructurallyMismatchedTwinFailsLoudly) {
  CompileScenario original(ShortConfig(42));
  RunToMidpoint(original);
  sim::Snapshot snap;
  ASSERT_EQ(original.SaveState(snap), Status::kSuccess);

  RunConfig other = ShortConfig(42);
  other.workload.processes = 3;  // Different object graph.
  CompileScenario mismatched(other);
  EXPECT_NE(mismatched.LoadState(snap), Status::kSuccess);
}

}  // namespace
}  // namespace nova::bench
