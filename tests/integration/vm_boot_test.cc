// End-to-end integration: a full NOVA stack (microhypervisor, root
// partition manager, disk server, VMM) hosting a synthetic guest OS.
#include <gtest/gtest.h>

#include "src/guest/driver_ahci.h"
#include "src/guest/kernel.h"
#include "src/guest/workload_disk.h"
#include "src/root/system.h"
#include "src/vmm/vmm.h"

namespace nova {
namespace {

using guest::GuestKernel;
using guest::GuestKernelConfig;
using guest::GuestLogicMux;

class VmBootTest : public ::testing::Test {
 protected:
  VmBootTest() : system_(root::SystemConfig{
                     .machine = {.cpus = {&hw::CoreI7_920()},
                                 .ram_size = 512ull << 20}}) {}

  // Build a VMM and a guest kernel wired into it.
  void MakeVm(vmm::VmmConfig config = {}) {
    vm_ = std::make_unique<vmm::Vmm>(&system_.hv, system_.root.get(), config);
    mux_ = std::make_unique<GuestLogicMux>();
    mux_->Attach(system_.hv.engine(config.first_cpu));
    gk_ = std::make_unique<GuestKernel>(
        &system_.machine.mem(),
        [this](std::uint64_t gpa) { return vm_->GpaToHpa(gpa); }, mux_.get(),
        GuestKernelConfig{.mem_bytes = vm_->guest_mem_bytes(),
                          .timer_hz = timer_hz_});
  }

  void BootAndRun(std::uint64_t main_gva, sim::PicoSeconds deadline,
                  const std::function<bool()>& pred) {
    gk_->EmitBoot(main_gva);
    gk_->Install();
    gk_->PrimeState(vm_->gstate());
    (void)vm_->Start(vm_->gstate().rip);
    system_.hv.RunUntilCondition(pred, deadline);
  }

  root::NovaSystem system_;
  std::unique_ptr<vmm::Vmm> vm_;
  std::unique_ptr<GuestLogicMux> mux_;
  std::unique_ptr<GuestKernel> gk_;
  std::uint32_t timer_hz_ = 0;
};

TEST_F(VmBootTest, GuestPrintsToVirtualSerial) {
  MakeVm();
  gk_->BuildStandardHandlers();
  hw::isa::Assembler& as = gk_->text();
  const std::uint64_t main = as.Here();
  for (const char c : std::string("hello from the guest")) {
    as.MovImm(1, static_cast<std::uint64_t>(c));
    as.Out(vmm::vuart::kData, 1);
  }
  gk_->EmitIdleLoop();

  BootAndRun(main, sim::Milliseconds(100),
             [this] { return vm_->vuart().output().size() >= 20; });
  EXPECT_EQ(vm_->vuart().output(), "hello from the guest");
  // Every character was a port-I/O exit handled by the VMM.
  EXPECT_GE(system_.hv.EventCount("Port I/O"), 20u);
}

TEST_F(VmBootTest, BiosServicesViaVmcall) {
  MakeVm();
  vm_->SetBootDisk(system_.platform.disk);
  const char boot_data[] = "bootloader payload!";
  system_.platform.disk->WriteContent(100 * hw::kSectorSize, boot_data,
                                      sizeof(boot_data));

  gk_->BuildStandardHandlers();
  hw::isa::Assembler& as = gk_->text();
  const std::uint64_t main = as.Here();
  // BIOS putchar.
  as.MovImm(1, 'B');
  as.Emit({.opcode = hw::isa::Opcode::kVmcall, .imm32 = 1});
  // BIOS disk read: one sector from LBA 100 into GPA 0x600000.
  as.MovImm(1, 100);
  as.MovImm(2, 1);
  as.MovImm(3, 0x600000);
  as.Emit({.opcode = hw::isa::Opcode::kVmcall, .imm32 = 2});
  // BIOS memory size into r1.
  as.Emit({.opcode = hw::isa::Opcode::kVmcall, .imm32 = 3});
  as.StoreAbs(1, 0x601000);
  gk_->EmitIdleLoop();

  BootAndRun(main, sim::Milliseconds(100), [this] {
    return system_.machine.mem().Read64(vm_->GpaToHpa(0x601000)) != 0;
  });
  EXPECT_EQ(vm_->vuart().output(), "B");
  char out[sizeof(boot_data)] = {};
  ASSERT_TRUE(vm_->ReadGuest(0x600000, out, sizeof(out)));
  EXPECT_STREQ(out, boot_data);
  EXPECT_EQ(system_.machine.mem().Read64(vm_->GpaToHpa(0x601000)),
            vm_->guest_mem_bytes());
}

TEST_F(VmBootTest, VirtualTimerTicksAndInjects) {
  timer_hz_ = 1000;
  MakeVm();
  gk_->BuildStandardHandlers();
  const std::uint64_t main = gk_->EmitIdleLoop();

  BootAndRun(main, sim::Milliseconds(50), [this] { return gk_->ticks() >= 20; });
  EXPECT_GE(gk_->ticks(), 20u);
  EXPECT_GE(vm_->vpit().ticks(), 20u);
  EXPECT_GE(vm_->interrupts_injected(), 20u);
  // Each tick is serviced with the four-step controller handshake.
  EXPECT_GE(system_.hv.EventCount("Port I/O"), 4 * 20u);
  // The parked (halted) vCPU was recalled for injection (§7.5).
  EXPECT_GE(system_.hv.EventCount("Recall"), 1u);
}

TEST_F(VmBootTest, VirtualizedDiskReadThroughFullStack) {
  auto& server = system_.StartDiskServer();
  MakeVm();
  vm_->ConnectDiskServer(&server);

  const char payload[] = "sector data via the whole stack";
  system_.platform.disk->WriteContent(42 * hw::kSectorSize, payload,
                                      sizeof(payload));

  gk_->BuildStandardHandlers();
  guest::GuestAhciDriver driver(
      gk_.get(), guest::GuestAhciDriver::Config{
                     .mmio_base = vmm::vahci::kMmioBase,
                     .irq_vector = vmm::vahci::kVector,
                     .read_ci = [this] {
                       return static_cast<std::uint32_t>(vm_->vahci().MmioRead(
                           vmm::vahci::kMmioBase + hw::ahci::kPxCi, 4));
                     }});
  guest::DiskWorkload workload(gk_.get(), &driver,
                               guest::DiskWorkload::Config{
                                   .block_bytes = 4096,
                                   .total_requests = 8,
                               });
  // Make the first request read LBA 42 so we can check the data. The
  // workload reads sequentially from LBA 0; instead just verify pattern
  // consistency below.
  const std::uint64_t main = workload.EmitMain();
  BootAndRun(main, sim::Seconds(2), [&workload] { return workload.done(); });

  EXPECT_TRUE(workload.done());
  EXPECT_EQ(workload.completed(), 8u);
  EXPECT_EQ(vm_->vahci().commands_issued(), 8u);
  EXPECT_EQ(vm_->vahci().commands_completed(), 8u);
  EXPECT_EQ(server.requests_issued(), 8u);
  EXPECT_EQ(server.requests_completed(), 8u);

  // The host controller DMAed disk content directly into the guest buffer:
  // compare the buffer against the disk model's content for the last block.
  std::uint8_t guest_buf[4096];
  ASSERT_TRUE(vm_->ReadGuest(guest::GuestLayout::kDmaBase, guest_buf,
                             sizeof(guest_buf)));
  std::uint8_t disk_buf[4096];
  system_.platform.disk->ReadContent(7 * 4096, disk_buf, sizeof(disk_buf));
  EXPECT_EQ(0, memcmp(guest_buf, disk_buf, sizeof(disk_buf)));

  // Table 2 structure: six MMIO exits per disk operation.
  EXPECT_GE(system_.hv.EventCount("Memory-Mapped I/O"), 6 * 8u);
}

TEST_F(VmBootTest, DirectAssignedDiskBypassesDeviceEmulation) {
  MakeVm();
  ASSERT_EQ(vm_->AssignHostDevice("ahci", /*vector=*/43), Status::kSuccess);

  gk_->BuildStandardHandlers();
  guest::GuestAhciDriver driver(
      gk_.get(), guest::GuestAhciDriver::Config{
                     .mmio_base = root::kAhciMmioBase,
                     .irq_vector = 43,
                     .read_ci = [this]() -> std::uint32_t {
                       std::uint64_t v = 0;
                       (void)system_.machine.bus().MmioRead(
                           root::kAhciMmioBase + hw::ahci::kPxCi, 4, &v);
                       return static_cast<std::uint32_t>(v);
                     }});
  guest::DiskWorkload workload(gk_.get(), &driver,
                               guest::DiskWorkload::Config{
                                   .block_bytes = 4096,
                                   .total_requests = 8,
                               });
  const std::uint64_t main = workload.EmitMain();
  BootAndRun(main, sim::Seconds(2), [&workload] { return workload.done(); });

  EXPECT_TRUE(workload.done());
  EXPECT_EQ(workload.completed(), 8u);
  // MMIO went straight to hardware: no device-emulation exits at all.
  EXPECT_EQ(system_.hv.EventCount("Memory-Mapped I/O"), 0u);
  // Interrupt virtualization still happens: the guest halts between issue
  // and completion, so each interrupt reaches the VMM's interrupt thread
  // in host mode and re-enters the guest via recall + injection, followed
  // by the four-step controller handshake.
  EXPECT_GE(system_.hv.EventCount("Recall"), 8u);
  EXPECT_GE(vm_->interrupts_injected(), 8u);
  EXPECT_GE(system_.hv.EventCount("Port I/O"), 4 * 8u);
  EXPECT_GE(system_.hv.EventCount("HLT"), 8u);
  // DMA was remapped guest-physical -> host-physical by the IOMMU using
  // the VM's own page table.
  EXPECT_EQ(system_.machine.iommu().faults(), 0u);
  EXPECT_TRUE(system_.machine.iommu().IsAttached(root::kAhciDevId));
}

TEST_F(VmBootTest, CompromisedGuestCannotEscapeItsVm) {
  // Two VMs; the first one scribbles over every guest-physical address it
  // can name. The second VM's memory and the hypervisor stay intact.
  MakeVm();
  auto vm2 = std::make_unique<vmm::Vmm>(&system_.hv, system_.root.get(),
                                        vmm::VmmConfig{.name = "victim"});
  const char canary[] = "victim data";
  vm2->WriteGuest(0x5000, canary, sizeof(canary));

  gk_->BuildStandardHandlers();
  hw::isa::Assembler& as = gk_->text();
  const std::uint64_t main = as.Here();
  // Hostile guest: store to addresses far beyond its RAM.
  as.MovImm(0, 0x6666);
  for (std::uint64_t gpa = 256ull << 20; gpa < (260ull << 20); gpa += (1ull << 20)) {
    as.StoreAbs(0, gpa);
  }
  gk_->EmitIdleLoop();

  int mmio_exits_before = static_cast<int>(system_.hv.EventCount("Memory-Mapped I/O"));
  BootAndRun(main, sim::Milliseconds(100), [this] {
    return system_.hv.EventCount("Memory-Mapped I/O") >= 4;
  });
  EXPECT_GT(static_cast<int>(system_.hv.EventCount("Memory-Mapped I/O")),
            mmio_exits_before);
  char out[sizeof(canary)] = {};
  vm2->ReadGuest(0x5000, out, sizeof(out));
  EXPECT_STREQ(out, canary);  // The victim VM is untouched.
}

}  // namespace
}  // namespace nova
