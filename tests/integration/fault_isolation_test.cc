// End-to-end failure isolation (§4.2): a VMM is killed mid-disk-workload,
// the supervisor detects the stale heartbeat, destroys the dead VM and
// VMM domains, and restarts the monitor over the surviving guest RAM. The
// victim VM resumes and completes its workload; a second VM compiling on
// another CPU is untouched — its counters are byte-identical to a
// fault-free run.
#include <gtest/gtest.h>

#include <memory>

#include "src/guest/driver_ahci.h"
#include "src/guest/kernel.h"
#include "src/guest/workload_compile.h"
#include "src/guest/workload_disk.h"
#include "src/root/supervisor.h"
#include "src/root/system.h"
#include "src/sim/fault.h"
#include "src/vmm/vmm.h"

namespace nova {
namespace {

struct ScenarioResult {
  bool a_done = false;
  std::uint64_t a_completed = 0;
  std::uint64_t a_retries = 0;
  std::uint64_t recoveries = 0;
  // VM B's progress markers, sampled the moment its workload finishes.
  bool b_done = false;
  std::uint64_t b_done_insns = 0;
  sim::PicoSeconds b_done_ps = 0;
  std::uint64_t frames_in_use = 0;
};

constexpr std::uint64_t kGuestMem = 32ull << 20;
constexpr std::uint64_t kDiskRequests = 150;

ScenarioResult RunScenario(bool crash) {
  root::SystemConfig sc;
  sc.machine = hw::MachineConfig{.cpus = {&hw::CoreI7_920(), &hw::CoreI7_920()},
                                 .ram_size = 512ull << 20};
  root::NovaSystem system(sc);
  services::DiskServer& server = system.StartDiskServer();

  // --- VM A: disk workload on CPU 0, supervised, crash candidate --------
  sim::FaultPlan plan(/*seed=*/7);
  if (crash) {
    plan.Schedule({.at = sim::Milliseconds(2),
                   .kind = sim::FaultKind::kVmmCrash,
                   .target = "a",
                   .count = 1,
                   .rate = 1.0});
  }
  plan.Arm(&system.machine.events());

  vmm::VmmConfig ca;
  ca.name = "a";
  ca.guest_mem_bytes = kGuestMem;
  ca.first_cpu = 0;
  auto vm_a = std::make_unique<vmm::Vmm>(&system.hv, system.root.get(), ca);
  vm_a->SetFaultPlan(&plan);
  vm_a->ConnectDiskServer(&server);

  guest::GuestLogicMux mux_a;
  mux_a.Attach(system.hv.engine(0));
  guest::GuestKernel gk_a(
      &system.machine.mem(),
      [&vm_a](std::uint64_t gpa) { return vm_a->GpaToHpa(gpa); }, &mux_a,
      guest::GuestKernelConfig{.mem_bytes = kGuestMem});
  gk_a.BuildStandardHandlers();
  guest::GuestAhciDriver driver_a(
      &gk_a,
      guest::GuestAhciDriver::Config{
          .mmio_base = vmm::vahci::kMmioBase,
          .irq_vector = vmm::vahci::kVector,
          .read_ci =
              [&vm_a]() -> std::uint32_t {
            return static_cast<std::uint32_t>(
                vm_a->vahci().MmioRead(vmm::vahci::kMmioBase + hw::ahci::kPxCi, 4));
          },
          .handle_errors = true,
          .read_err =
              [&vm_a]() -> std::uint32_t {
            return static_cast<std::uint32_t>(
                vm_a->vahci().MmioRead(vmm::vahci::kMmioBase + hw::ahci::kPxVs, 4));
          }});
  guest::DiskWorkload workload_a(
      &gk_a, &driver_a,
      guest::DiskWorkload::Config{.block_bytes = 4096,
                                  .total_requests = kDiskRequests});
  gk_a.EmitBoot(workload_a.EmitMain());
  gk_a.Install();
  gk_a.PrimeState(vm_a->gstate());
  (void)vm_a->Start(vm_a->gstate().rip);

  // --- VM B: compute-only kernel compile on CPU 1 -----------------------
  vmm::VmmConfig cb;
  cb.name = "b";
  cb.guest_mem_bytes = kGuestMem;
  cb.first_cpu = 1;
  vmm::Vmm vm_b(&system.hv, system.root.get(), cb);

  guest::GuestLogicMux mux_b;
  mux_b.Attach(system.hv.engine(1));
  guest::GuestKernel gk_b(
      &system.machine.mem(),
      [&vm_b](std::uint64_t gpa) { return vm_b.GpaToHpa(gpa); }, &mux_b,
      guest::GuestKernelConfig{.mem_bytes = kGuestMem});
  gk_b.BuildStandardHandlers();
  guest::CompileWorkload::Config wb;
  wb.processes = 2;
  wb.ws_pages = 32;
  wb.total_units = 300;
  wb.compute_cycles = 8000;
  wb.mem_bursts = 3;
  wb.switch_every = 10;
  wb.disk_every = 0;  // Compute-only: CPU 1 shares nothing with VM A.
  wb.recycle_every = 150;
  guest::CompileWorkload workload_b(&gk_b, nullptr, wb);
  gk_b.EmitBoot(workload_b.EmitMain());
  gk_b.Install();
  gk_b.PrimeState(vm_b.gstate());
  (void)vm_b.Start(vm_b.gstate().rip);

  // --- Supervision + restart policy -------------------------------------
  root::VmmSupervisor::Config supc;
  supc.check_period_ps = sim::Microseconds(200);
  supc.stale_checks = 2;
  root::VmmSupervisor supervisor(&system.hv, system.root.get(), supc);
  supervisor.Watch(vm_a.get(), [&](const root::VmmSupervisor::RecoveryInfo& info) {
    // Rebuild the monitor over the surviving guest RAM and resume the
    // guest exactly where it stopped. The dead VMM's disk channel is
    // retired first so the replacement recycles its ring frame.
    server.CloseChannel(vm_a->disk_channel_id());
    vm_a.reset();
    vmm::VmmConfig cr = ca;
    cr.fixed_guest_base_page = info.guest_base_page;
    vm_a = std::make_unique<vmm::Vmm>(&system.hv, system.root.get(), cr);
    vm_a->ConnectDiskServer(&server);
    (void)vm_a->Start(info.gstate.rip);
    vm_a->gstate() = info.gstate;
    vm_a->vahci().RestoreRegs(info.vahci_regs);
    // The guest driver still considers its in-flight slots issued; surface
    // them as errors so its retry path re-submits them to the new model.
    vm_a->vahci().InjectAbort(driver_a.issued_mask());
  });

  ScenarioResult r;
  system.hv.RunUntilCondition(
      [&] {
        if (!r.b_done && workload_b.done()) {
          r.b_done = true;
          r.b_done_insns = system.hv.engine(1).instructions();
          r.b_done_ps = system.machine.cpu(1).NowPs();
        }
        return workload_a.done() && workload_b.done();
      },
      sim::Seconds(30));

  r.a_done = workload_a.done();
  r.a_completed = workload_a.completed();
  r.a_retries = driver_a.retried();
  r.recoveries = supervisor.recoveries();
  r.frames_in_use = system.hv.FramesInUse();
  return r;
}

TEST(FaultIsolation, VmmCrashRecoversAndNeighborIsUnaffected) {
  const ScenarioResult clean = RunScenario(/*crash=*/false);
  ASSERT_TRUE(clean.a_done);
  ASSERT_TRUE(clean.b_done);
  EXPECT_EQ(clean.recoveries, 0u);
  EXPECT_EQ(clean.a_completed, kDiskRequests);
  EXPECT_EQ(clean.a_retries, 0u);

  const ScenarioResult faulted = RunScenario(/*crash=*/true);
  // VM A's VMM was killed and restarted; the workload still completed.
  EXPECT_EQ(faulted.recoveries, 1u);
  ASSERT_TRUE(faulted.a_done);
  EXPECT_EQ(faulted.a_completed, kDiskRequests);
  // The in-flight requests at crash time were re-issued by the driver.
  EXPECT_GE(faulted.a_retries, 1u);

  // VM B never noticed: identical instruction count and completion time.
  ASSERT_TRUE(faulted.b_done);
  EXPECT_EQ(faulted.b_done_insns, clean.b_done_insns);
  EXPECT_EQ(faulted.b_done_ps, clean.b_done_ps);
}

TEST(FaultIsolation, RecoveryReclaimsKernelFrames) {
  // The crash-and-restart cycle must not leak kernel frames: the restarted
  // system holds one VMM + one VM, exactly like the clean run.
  const ScenarioResult clean = RunScenario(/*crash=*/false);
  const ScenarioResult faulted = RunScenario(/*crash=*/true);
  EXPECT_EQ(faulted.frames_in_use, clean.frames_in_use);
}

}  // namespace
}  // namespace nova
