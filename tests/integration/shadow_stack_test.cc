// Full stack under shadow paging: the same VMM and guest that run under
// nested paging run unmodified when the kernel falls back to the vTLB —
// only the exit mix changes (Table 2's two compile columns).
#include <gtest/gtest.h>

#include "src/guest/kernel.h"
#include "src/root/system.h"
#include "src/vmm/vmm.h"

namespace nova {
namespace {

class ShadowStackTest : public ::testing::Test {
 protected:
  // Yonah: no EPT — the configuration that forces shadow paging.
  ShadowStackTest()
      : system_(root::SystemConfig{
            .machine = {.cpus = {&hw::CoreDuoT2500()}, .ram_size = 512ull << 20}}) {}

  root::NovaSystem system_;
};

TEST_F(ShadowStackTest, GuestWithPagingRunsUnderVtlb) {
  vmm::Vmm vm(&system_.hv, system_.root.get(),
              vmm::VmmConfig{.guest_mem_bytes = 64ull << 20,
                             .mode = hw::TranslationMode::kShadow});

  guest::GuestLogicMux mux;
  mux.Attach(system_.hv.engine(0));
  guest::GuestKernel gk(
      &system_.machine.mem(),
      [&vm](std::uint64_t gpa) { return vm.GpaToHpa(gpa); }, &mux,
      guest::GuestKernelConfig{.mem_bytes = 64ull << 20});
  gk.BuildStandardHandlers();
  const std::uint64_t proc = gk.CreateAddressSpace();

  hw::isa::Assembler& as = gk.text();
  const std::uint64_t main = as.Here();
  // Kernel-map write, demand-faulted process write, address-space switch,
  // INVLPG via the #PF handler: the full vTLB exercise.
  as.MovImm(1, 0x42);
  as.StoreAbs(1, 0x600000);
  as.MovCr3Imm(proc);
  as.MovImm(2, 0x43);
  as.StoreAbs(2, guest::GuestLayout::kProcVirtBase);
  as.MovCr3Imm(gk.kernel_cr3());
  as.LoadAbs(3, 0x600000);
  as.StoreAbs(3, 0x601000);
  gk.EmitIdleLoop();
  gk.EmitBoot(main);
  gk.Install();
  gk.PrimeState(vm.gstate());
  (void)vm.Start(vm.gstate().rip);

  system_.hv.RunUntilCondition(
      [&] {
        std::uint64_t v = 0;
        vm.ReadGuest(0x601000, &v, 8);
        return v == 0x42;
      },
      sim::Seconds(5));

  std::uint64_t v = 0;
  vm.ReadGuest(0x601000, &v, 8);
  EXPECT_EQ(v, 0x42u);
  // The vTLB did the work: fills, kernel-internal CR handling, at least
  // one injected guest page fault for the demand-mapped page.
  EXPECT_GT(system_.hv.EventCount("vTLB Fill"), 5u);
  EXPECT_GE(system_.hv.EventCount("CR Read/Write"), 2u);
  EXPECT_GE(system_.hv.EventCount("vTLB Flush"), 2u);
  EXPECT_GE(system_.hv.EventCount("Guest Page Fault"), 1u);
  EXPECT_GE(system_.hv.EventCount("INVLPG"), 1u);
  // No nested-paging exits: memory virtualization never reached the VMM.
  EXPECT_EQ(system_.hv.EventCount("Memory-Mapped I/O"), 0u);
}

TEST_F(ShadowStackTest, MmioStillReachesVmmUnderShadow) {
  vmm::Vmm vm(&system_.hv, system_.root.get(),
              vmm::VmmConfig{.guest_mem_bytes = 64ull << 20,
                             .mode = hw::TranslationMode::kShadow});
  guest::GuestLogicMux mux;
  mux.Attach(system_.hv.engine(0));
  guest::GuestKernel gk(
      &system_.machine.mem(),
      [&vm](std::uint64_t gpa) { return vm.GpaToHpa(gpa); }, &mux,
      guest::GuestKernelConfig{.mem_bytes = 64ull << 20});
  gk.BuildStandardHandlers();
  // Map the virtual AHCI window in the guest page table; the backing GPA
  // is unmapped in host space -> vTLB classifies it as MMIO.
  gk.MapDevice(gk.kernel_cr3(), vmm::vahci::kMmioBase, hw::kPageSize);

  hw::isa::Assembler& as = gk.text();
  const std::uint64_t main = as.Here();
  as.Load(1, hw::isa::kNoReg, vmm::vahci::kMmioBase + hw::ahci::kPxSsts);
  as.StoreAbs(1, 0x600000);
  gk.EmitIdleLoop();
  gk.EmitBoot(main);
  gk.Install();
  gk.PrimeState(vm.gstate());
  (void)vm.Start(vm.gstate().rip);

  system_.hv.RunUntilCondition(
      [&] {
        std::uint64_t v = 0;
        vm.ReadGuest(0x600000, &v, 8);
        return v != 0;
      },
      sim::Seconds(5));
  std::uint64_t v = 0;
  vm.ReadGuest(0x600000, &v, 8);
  EXPECT_EQ(v, 0x123u);  // PxSSTS through the emulated device.
  EXPECT_GE(system_.hv.EventCount("Memory-Mapped I/O"), 1u);
}

}  // namespace
}  // namespace nova
