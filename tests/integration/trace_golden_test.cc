// Golden-trace regression tests: two full VM-boot runs with the same seed
// must produce bit-identical trace digests; changing the workload seed must
// change the digest; enabling tracing must not perturb any architectural
// result; and the TraceReport attribution must agree with the independent
// counter registry for every Table 2 row.
#include <gtest/gtest.h>

#include <string>

#include "bench/common.h"

namespace nova::bench {
namespace {

// Table 2 rows whose counters are mirrored as trace instants at the same
// call sites (see bench/tab2_events.cc).
const char* kTab2Rows[] = {
    "vTLB Fill",        "Guest Page Fault", "CR Read/Write", "vTLB Flush",
    "Port I/O",         "INVLPG",           "Hardware Interrupts",
    "Memory-Mapped I/O", "HLT",             "Interrupt Window",
    "Recall",           "CPUID",
};

guest::CompileWorkload::Config ShortCompile(std::uint64_t seed = 42) {
  guest::CompileWorkload::Config w;
  w.processes = 2;
  w.ws_pages = 64;
  w.total_units = 400;
  w.compute_cycles = 8000;
  w.mem_bursts = 3;
  w.switch_every = 10;
  w.disk_every = 80;
  w.seed = seed;
  return w;
}

RunConfig TracedConfig(std::uint64_t seed = 42,
                       hw::TranslationMode mode = hw::TranslationMode::kNested) {
  RunConfig c;
  c.stack = StackKind::kNova;
  c.mode = mode;
  c.workload = ShortCompile(seed);
  c.trace = true;
  return c;
}

TEST(TraceGoldenTest, SameSeedSameDigestAcrossFullVmBoots) {
  const RunResult first = RunCompile(TracedConfig());
  const RunResult second = RunCompile(TracedConfig());
  ASSERT_FALSE(first.trace_rows.empty());
  EXPECT_NE(first.trace_digest, 0u);
  EXPECT_EQ(first.trace_digest, second.trace_digest);
  EXPECT_EQ(first.trace_rows, second.trace_rows);
  EXPECT_EQ(first.seconds, second.seconds);
}

TEST(TraceGoldenTest, DigestChangesWithWorkloadSeed) {
  const RunResult base = RunCompile(TracedConfig(42));
  const RunResult other = RunCompile(TracedConfig(43));
  EXPECT_NE(base.trace_digest, other.trace_digest);
}

TEST(TraceGoldenTest, TracingDoesNotPerturbArchitecturalResults) {
  RunConfig traced = TracedConfig();
  RunConfig untraced = traced;
  untraced.trace = false;

  const RunResult on = RunCompile(traced);
  const RunResult off = RunCompile(untraced);
  // Tracing charges no cycles and touches no architectural state: timing,
  // exit counts and every event counter must be bit-identical.
  EXPECT_EQ(on.seconds, off.seconds);
  EXPECT_EQ(on.exits, off.exits);
  EXPECT_EQ(on.guest_insns, off.guest_insns);
  for (const char* row : kTab2Rows) {
    EXPECT_EQ(on.stats.Value(row), off.stats.Value(row)) << row;
  }
  EXPECT_EQ(off.trace_digest, 0u);
  EXPECT_TRUE(off.trace_rows.empty());
}

TEST(TraceGoldenTest, TraceAttributionMatchesCountersExactly) {
  // Shadow paging exercises the vTLB rows as well as the common exits.
  const RunResult r = RunCompile(TracedConfig(42, hw::TranslationMode::kShadow));
  ASSERT_FALSE(r.trace_rows.empty());
  for (const char* row : kTab2Rows) {
    const auto it = r.trace_rows.find(row);
    const std::uint64_t traced = it == r.trace_rows.end() ? 0 : it->second.count;
    EXPECT_EQ(traced, r.stats.Value(row)) << row;
  }
  // The run under shadow paging must actually produce vTLB traffic, or the
  // equality above would be vacuous.
  EXPECT_GT(r.stats.Value("vTLB Fill"), 0u);
}

}  // namespace
}  // namespace nova::bench
