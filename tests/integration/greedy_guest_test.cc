// Greedy-guest isolation: an adversarial shadow-mode VM that thrashes its
// shadow page tables as fast as it can, bounded by a kernel-memory quota,
// cannot perturb a victim VM on another CPU. The victim's instruction
// count and completion time are bit-identical to running alone, while the
// adversary is held to its quota by LRU pressure eviction of its own
// shadow contexts.
#include <gtest/gtest.h>

#include <memory>

#include "src/guest/kernel.h"
#include "src/guest/workload_compile.h"
#include "src/root/system.h"
#include "src/vmm/vmm.h"

namespace nova {
namespace {

constexpr std::uint64_t kGuestMem = 32ull << 20;

// How much forward progress the thrasher must make before a scenario
// ends. The victim's short workload fits inside its first quantum, so the
// run predicate must explicitly demand adversary progress or the
// adversary would never leave the runqueue.
constexpr std::uint64_t kAdversaryGoal = 500;

// The adversary: a shadow-paged guest juggling many address spaces with a
// context switch after every unit — the workload shape that maximizes
// kernel shadow-table allocation. It never finishes on its own.
guest::CompileWorkload::Config AdversaryWorkload() {
  guest::CompileWorkload::Config w;
  w.processes = 6;
  w.ws_pages = 16;
  w.total_units = 1'000'000'000;
  w.compute_cycles = 2000;
  w.mem_bursts = 2;
  w.switch_every = 1;
  w.disk_every = 0;
  w.recycle_every = 40;  // Keep minting fresh address spaces.
  return w;
}

// The victim: the compute-only compile workload from the fault-isolation
// scenario, on its own CPU.
guest::CompileWorkload::Config VictimWorkload() {
  guest::CompileWorkload::Config w;
  w.processes = 2;
  w.ws_pages = 32;
  w.total_units = 300;
  w.compute_cycles = 8000;
  w.mem_bursts = 3;
  w.switch_every = 10;
  w.disk_every = 0;
  w.recycle_every = 150;
  return w;
}

struct GreedyResult {
  bool victim_done = false;
  std::uint64_t victim_insns = 0;
  sim::PicoSeconds victim_ps = 0;
  std::uint64_t adversary_units = 0;
  std::uint64_t adversary_used = 0;
  std::uint64_t adversary_limit = 0;
  std::uint64_t pressure_evicts = 0;
  std::uint64_t vm_errors = 0;
  // Kernel-memory appetite of the adversary right after construction;
  // the probe run uses it to size the pinching quota.
  std::uint64_t adversary_boot_used = 0;
};

// `adversary_quota` == 0: no adversary at all (the victim's solo
// reference run). kUnlimited: adversary present but unbounded (the quota
// probe). Anything else: the real pinched run.
GreedyResult RunScenario(std::uint64_t adversary_quota) {
  root::SystemConfig sc;
  sc.machine = hw::MachineConfig{.cpus = {&hw::CoreI7_920(), &hw::CoreI7_920()},
                                 .ram_size = 512ull << 20};
  root::NovaSystem system(sc);
  system.hv.set_vtlb_policy(hv::VtlbPolicy{.cache_contexts = true});

  // Victim first, so its placement and construction are identical whether
  // or not the adversary exists.
  vmm::VmmConfig vc;
  vc.name = "victim";
  vc.guest_mem_bytes = kGuestMem;
  vc.first_cpu = 1;
  vmm::Vmm victim(&system.hv, system.root.get(), vc);

  guest::GuestLogicMux victim_mux;
  victim_mux.Attach(system.hv.engine(1));
  guest::GuestKernel victim_gk(
      &system.machine.mem(),
      [&victim](std::uint64_t gpa) { return victim.GpaToHpa(gpa); }, &victim_mux,
      guest::GuestKernelConfig{.mem_bytes = kGuestMem});
  victim_gk.BuildStandardHandlers();
  guest::CompileWorkload victim_work(&victim_gk, nullptr, VictimWorkload());
  victim_gk.EmitBoot(victim_work.EmitMain());
  victim_gk.Install();
  victim_gk.PrimeState(victim.gstate());
  EXPECT_EQ(victim.Start(victim.gstate().rip), Status::kSuccess);

  std::unique_ptr<vmm::Vmm> greedy;
  std::unique_ptr<guest::GuestLogicMux> greedy_mux;
  std::unique_ptr<guest::GuestKernel> greedy_gk;
  std::unique_ptr<guest::CompileWorkload> greedy_work;
  GreedyResult r;
  if (adversary_quota != 0) {
    vmm::VmmConfig ac;
    ac.name = "greedy";
    ac.guest_mem_bytes = kGuestMem;
    ac.first_cpu = 0;
    ac.mode = hw::TranslationMode::kShadow;
    ac.kmem_quota_frames = adversary_quota;
    greedy = std::make_unique<vmm::Vmm>(&system.hv, system.root.get(), ac);
    EXPECT_EQ(greedy->create_status(), Status::kSuccess);

    greedy_mux = std::make_unique<guest::GuestLogicMux>();
    greedy_mux->Attach(system.hv.engine(0));
    greedy_gk = std::make_unique<guest::GuestKernel>(
        &system.machine.mem(),
        [&g = *greedy](std::uint64_t gpa) { return g.GpaToHpa(gpa); },
        greedy_mux.get(), guest::GuestKernelConfig{.mem_bytes = kGuestMem});
    greedy_gk->BuildStandardHandlers();
    greedy_work = std::make_unique<guest::CompileWorkload>(greedy_gk.get(), nullptr,
                                                           AdversaryWorkload());
    greedy_gk->EmitBoot(greedy_work->EmitMain());
    greedy_gk->Install();
    greedy_gk->PrimeState(greedy->gstate());
    EXPECT_EQ(greedy->Start(greedy->gstate().rip), Status::kSuccess);
    r.adversary_boot_used = greedy->vmm_pd()->kmem().used();
  }

  // The scenario ends when the victim is done AND the adversary has
  // thrashed through its progress goal (the victim finishes first — its
  // workload is tiny — after which only CPU 0 has runnable work).
  system.hv.RunUntilCondition(
      [&victim_work, &greedy_work] {
        return victim_work.done() &&
               (greedy_work == nullptr ||
                greedy_work->units_done() >= kAdversaryGoal);
      },
      sim::Seconds(30));

  r.victim_done = victim_work.done();
  r.victim_insns = system.hv.engine(1).instructions();
  r.victim_ps = system.machine.cpu(1).NowPs();
  if (greedy != nullptr) {
    r.adversary_units = greedy_work->units_done();
    r.adversary_used = greedy->vmm_pd()->kmem().used();
    r.adversary_limit = greedy->vmm_pd()->kmem().limit();
    r.pressure_evicts = system.hv.EventCount("vTLB Pressure Evict");
    r.vm_errors = system.hv.EventCount("VM Error");
  }
  return r;
}

TEST(GreedyGuest, QuotaBoundedThrasherCannotPerturbVictim) {
  // Reference: the victim alone.
  const GreedyResult solo = RunScenario(/*adversary_quota=*/0);
  ASSERT_TRUE(solo.victim_done);

  // Probe: adversary unbounded, read its post-construction appetite so
  // the pinching quota is derived, not guessed. Construction is
  // deterministic, so the bounded run consumes the same baseline.
  const GreedyResult probe = RunScenario(hv::KmemQuota::kUnlimited);
  ASSERT_TRUE(probe.victim_done);
  ASSERT_GT(probe.adversary_boot_used, 0u);

  // Real run: the adversary gets its construction baseline plus a shadow
  // working set far smaller than its appetite (6 address spaces, recycled
  // constantly, must share ~24 frames).
  const std::uint64_t quota = probe.adversary_boot_used + 24;
  const GreedyResult pinched = RunScenario(quota);

  // The quota bit: the adversary was forced into pressure eviction, never
  // exceeded its limit, and still made forward progress (no parked vCPU).
  EXPECT_GE(pinched.pressure_evicts, 1u);
  EXPECT_LE(pinched.adversary_used, pinched.adversary_limit);
  EXPECT_EQ(pinched.adversary_limit, quota);
  EXPECT_GE(pinched.adversary_units, kAdversaryGoal);
  EXPECT_EQ(pinched.vm_errors, 0u);

  // The isolation bit: the victim's run is bit-identical to running
  // alone — same instruction count, same completion time — whether the
  // neighbour is unbounded or pinched.
  ASSERT_TRUE(pinched.victim_done);
  EXPECT_EQ(probe.victim_insns, solo.victim_insns);
  EXPECT_EQ(probe.victim_ps, solo.victim_ps);
  EXPECT_EQ(pinched.victim_insns, solo.victim_insns);
  EXPECT_EQ(pinched.victim_ps, solo.victim_ps);
}

}  // namespace
}  // namespace nova
