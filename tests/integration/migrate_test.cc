// Live migration end-to-end: pre-copy convergence, digest-exact resume on
// the target, and abort-and-resume-at-source under link partitions.
#include <gtest/gtest.h>

#include "bench/scenario.h"
#include "src/services/migration.h"

namespace nova::bench {
namespace {

constexpr sim::PicoSeconds kDeadline = sim::Seconds(120);

RunConfig MigrateConfig() {
  RunConfig c;
  c.stack = StackKind::kNova;
  c.workload.processes = 2;
  c.workload.ws_pages = 64;
  // Long enough that the workload is still running when pre-copy cuts
  // over — migration of a live, dirtying guest, not an idle one.
  c.workload.total_units = 20000;
  c.workload.compute_cycles = 8000;
  c.workload.mem_bursts = 3;
  c.workload.switch_every = 10;
  c.workload.disk_every = 80;
  c.workload.recycle_every = 5000;
  return c;
}

services::MigrationConfig FastLink() {
  services::MigrationConfig mc;
  mc.bandwidth_mbps = 40000;  // Keeps round 0 (full RAM) shorter than the run.
  mc.max_rounds = 8;
  mc.stop_copy_threshold_pages = 64;
  return mc;
}

struct Nodes {
  CompileScenario src;
  CompileScenario dst;
  explicit Nodes(const RunConfig& c) : src(c), dst(c) {}

  services::MigrationDriver::Endpoints Endpoints() {
    services::MigrationDriver::Endpoints ep;
    ep.source_hv = &src.system().hv;
    ep.source_vm_pd = src.vm().vm_pd();
    ep.link = src.system().platform.link.get();
    ep.guest_pages = kBenchGuestMem >> hw::kPageShift;
    ep.run_source = [this](sim::PicoSeconds dt) { src.RunFor(dt); };
    ep.save = [this](sim::Snapshot& s) { return src.SaveState(s); };
    ep.load = [this](sim::Snapshot& s) { return dst.LoadState(s); };
    return ep;
  }
};

std::uint64_t FinishDigest(CompileScenario& scn) {
  sim::Tracer& tracer = scn.system().machine.tracer();
  tracer.Reset();
  tracer.set_enabled(true);
  scn.RunUntilDone(kDeadline);
  tracer.set_enabled(false);
  return tracer.digest();
}

TEST(Migration, PrecopyConvergesAndTargetResumesExactly) {
  Nodes nodes(MigrateConfig());
  nodes.src.RunFor(sim::Milliseconds(2));  // Warm the working set.
  ASSERT_FALSE(nodes.src.done());

  services::MigrationDriver driver(nodes.Endpoints(), FastLink());
  const services::MigrationResult r = driver.Run();
  ASSERT_TRUE(r.success);
  EXPECT_GE(r.rounds, 1u);
  EXPECT_EQ(r.retries, 0u);
  EXPECT_GT(r.bytes_sent, 0u);
  EXPECT_GT(r.snapshot_bytes, 0u);
  // Downtime covers only the residual dirty set + state, a small slice of
  // the whole transfer.
  EXPECT_LT(r.downtime_ps, r.total_ps);
  // Later rounds ship only what the guest re-dirtied — far less than the
  // round-0 full copy.
  ASSERT_GE(r.round_pages.size(), 1u);
  if (r.round_pages.size() > 1) {
    EXPECT_LT(r.round_pages.back(), r.round_pages.front() / 4);
  }

  // The paused source is the oracle: it holds exactly the state the
  // snapshot captured, so running both to completion must produce
  // bit-identical trace digests and final progress.
  const std::uint64_t src_digest = FinishDigest(nodes.src);
  const std::uint64_t dst_digest = FinishDigest(nodes.dst);
  EXPECT_EQ(src_digest, dst_digest);
  EXPECT_EQ(nodes.src.workload().units_done(),
            nodes.dst.workload().units_done());
  EXPECT_TRUE(nodes.dst.done());
  // The restored VM's kernel-memory ledger balances: the target charged
  // exactly what the source had charged, no leaked or double-counted
  // frames across the restore.
  EXPECT_EQ(nodes.src.vm().vm_pd()->kmem().used(),
            nodes.dst.vm().vm_pd()->kmem().used());
  EXPECT_EQ(nodes.src.vm().vm_pd()->kmem().limit(),
            nodes.dst.vm().vm_pd()->kmem().limit());
}

TEST(Migration, PartitionRetriesThenSucceeds) {
  Nodes nodes(MigrateConfig());
  nodes.src.RunFor(sim::Milliseconds(1));

  // Partition the link for the first 3 ms: the first transfer attempts
  // abort and back off; the window heals well before the retry budget.
  sim::FaultPlan plan(/*seed=*/9);
  plan.Schedule({.at = 0,
                 .kind = sim::FaultKind::kLinkPartition,
                 .target = "netlink",
                 .window_ps = sim::Milliseconds(3)});
  plan.Arm(&nodes.src.system().machine.events());
  nodes.src.system().platform.link->set_fault_plan(&plan);

  services::MigrationConfig mc = FastLink();
  mc.retry_max = 10;
  mc.retry_backoff_ps = sim::Milliseconds(1);
  services::MigrationDriver driver(nodes.Endpoints(), mc);
  const services::MigrationResult r = driver.Run();
  EXPECT_TRUE(r.success);
  EXPECT_GT(r.retries, 0u);
  nodes.dst.RunUntilDone(kDeadline);
  EXPECT_TRUE(nodes.dst.done());
}

TEST(Migration, UnreachableTargetAbortsAndSourceResumes) {
  Nodes nodes(MigrateConfig());
  nodes.src.RunFor(sim::Milliseconds(1));

  // A partition that outlasts every retry: migration must fail cleanly.
  sim::FaultPlan plan(/*seed=*/9);
  plan.Schedule({.at = 0,
                 .kind = sim::FaultKind::kLinkPartition,
                 .target = "netlink",
                 .window_ps = sim::Seconds(100)});
  plan.Arm(&nodes.src.system().machine.events());
  nodes.src.system().platform.link->set_fault_plan(&plan);

  services::MigrationConfig mc = FastLink();
  mc.retry_max = 2;
  mc.retry_backoff_ps = sim::Milliseconds(1);
  services::MigrationDriver driver(nodes.Endpoints(), mc);
  const services::MigrationResult r = driver.Run();
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.retries, mc.retry_max + 1);

  // The failed migration must not have harmed the guest: the source
  // resumes and completes the workload.
  nodes.src.RunUntilDone(kDeadline);
  EXPECT_TRUE(nodes.src.done());
  EXPECT_EQ(nodes.src.workload().units_done(),
            MigrateConfig().workload.total_units);
}

}  // namespace
}  // namespace nova::bench
