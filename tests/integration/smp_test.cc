// Multiprocessor virtualization (§7.5): a VM with two virtual CPUs, each
// with its own handler EC and portal set on its own physical CPU; recall
// reaches every vCPU.
#include <gtest/gtest.h>

#include "src/guest/kernel.h"
#include "src/root/system.h"
#include "src/vmm/vmm.h"

namespace nova {
namespace {

class SmpTest : public ::testing::Test {
 protected:
  SmpTest()
      : system_(root::SystemConfig{
            .machine = {.cpus = {&hw::CoreI7_920(), &hw::CoreI7_920()},
                        .ram_size = 512ull << 20}}) {}

  root::NovaSystem system_;
};

TEST_F(SmpTest, TwoVcpusRunConcurrently) {
  vmm::Vmm vm(&system_.hv, system_.root.get(),
              vmm::VmmConfig{.guest_mem_bytes = 64ull << 20, .num_vcpus = 2});

  guest::GuestLogicMux mux0;
  guest::GuestLogicMux mux1;
  mux0.Attach(system_.hv.engine(0));
  mux1.Attach(system_.hv.engine(1));

  // Each vCPU runs its own little program (a real SMP guest would share a
  // kernel image; separate images keep the test direct).
  auto build = [&](std::uint64_t code_gpa, std::uint64_t flag_gpa,
                   std::uint64_t value) {
    hw::isa::Assembler as(code_gpa);
    as.MovImm(1, value);
    as.MovImm(0, 2000);
    const std::uint64_t top = as.NopBlock(500);
    as.Loop(0, top);
    as.StoreAbs(1, flag_gpa);
    as.Sti();
    as.Hlt();
    const std::uint64_t hlt_again = as.Here();
    as.Hlt();
    as.Jmp(hlt_again);
    vm.InstallImage(as);
  };
  build(0x10000, 0x600000, 0xaa);
  build(0x20000, 0x601000, 0xbb);

  vm.gstate(0).rip = 0x10000;
  vm.gstate(1).rip = 0x20000;
  (void)vm.Start(0x10000, 0);
  (void)vm.Start(0x20000, 1);

  system_.hv.RunUntilCondition(
      [&] {
        std::uint64_t a = 0, b = 0;
        vm.ReadGuest(0x600000, &a, 8);
        vm.ReadGuest(0x601000, &b, 8);
        return a == 0xaa && b == 0xbb;
      },
      sim::Seconds(5));

  std::uint64_t a = 0, b = 0;
  vm.ReadGuest(0x600000, &a, 8);
  vm.ReadGuest(0x601000, &b, 8);
  EXPECT_EQ(a, 0xaau);
  EXPECT_EQ(b, 0xbbu);
  // Both physical CPUs made progress.
  EXPECT_GT(system_.hv.engine(0).instructions(), 100u);
  EXPECT_GT(system_.hv.engine(1).instructions(), 100u);
  // The virtual CPUs share one guest-physical address space.
  EXPECT_EQ(vm.vcpu_ec(0)->ctl().nested_root, vm.vcpu_ec(1)->ctl().nested_root);
}

TEST_F(SmpTest, RecallReachesEveryVcpu) {
  // A TLB-shootdown-style broadcast: the VMM recalls all virtual CPUs to
  // inject the same vector (§7.5's IPI example).
  vmm::Vmm vm(&system_.hv, system_.root.get(),
              vmm::VmmConfig{.guest_mem_bytes = 64ull << 20, .num_vcpus = 2});

  for (std::uint32_t v = 0; v < 2; ++v) {
    hw::isa::Assembler handler(0x30000 + v * 0x1000);
    handler.MovImm(5, 1);
    handler.StoreAbs(5, 0x610000 + v * 0x1000);  // Mark: ISR ran here.
    handler.Iret();
    vm.InstallImage(handler);

    hw::isa::Assembler as(0x10000 + v * 0x10000);
    as.SetIdt(50, 0x30000 + v * 0x1000);
    as.Sti();
    const std::uint64_t spin = as.NopBlock(200);
    as.Jmp(spin);
    vm.InstallImage(as);
    vm.gstate(v).rip = as.base();
    (void)vm.Start(as.base(), v);
  }

  // Let both vCPUs start spinning.
  system_.hv.RunUntil(sim::Microseconds(200));
  // Broadcast: raise vector 50 at the virtual interrupt controller — the
  // kick recalls every vCPU for timely injection.
  vm.vpic().Raise(50);
  system_.hv.RunUntilCondition(
      [&] {
        std::uint64_t m0 = 0, m1 = 0;
        vm.ReadGuest(0x610000, &m0, 8);
        vm.ReadGuest(0x611000, &m1, 8);
        return m0 == 1 || m1 == 1;
      },
      sim::Seconds(1));

  std::uint64_t m0 = 0, m1 = 0;
  vm.ReadGuest(0x610000, &m0, 8);
  vm.ReadGuest(0x611000, &m1, 8);
  // The single shared vPIC delivers the vector to one vCPU (real NOVA
  // keeps a per-vCPU controller; our model serializes via BeginService).
  EXPECT_TRUE(m0 == 1 || m1 == 1);
  EXPECT_GE(system_.hv.EventCount("Recall"), 1u);
}

TEST_F(SmpTest, TwoIndependentVmsOnSeparateCpus) {
  vmm::Vmm vm_a(&system_.hv, system_.root.get(),
                vmm::VmmConfig{.name = "a", .guest_mem_bytes = 32ull << 20,
                               .first_cpu = 0});
  vmm::Vmm vm_b(&system_.hv, system_.root.get(),
                vmm::VmmConfig{.name = "b", .guest_mem_bytes = 32ull << 20,
                               .first_cpu = 1});
  auto build = [](vmm::Vmm& vm, std::uint64_t value) {
    hw::isa::Assembler as(0x10000);
    as.MovImm(1, value);
    as.StoreAbs(1, 0x500000);
    as.Sti();
    const std::uint64_t hlt = as.Here();
    as.Hlt();
    as.Jmp(hlt);
    vm.InstallImage(as);
    (void)vm.Start(0x10000);
  };
  build(vm_a, 0x1234);
  build(vm_b, 0x5678);
  system_.hv.RunUntil(sim::Milliseconds(5));

  std::uint64_t a = 0, b = 0;
  vm_a.ReadGuest(0x500000, &a, 8);
  vm_b.ReadGuest(0x500000, &b, 8);
  EXPECT_EQ(a, 0x1234u);
  EXPECT_EQ(b, 0x5678u);
  // Distinct TLB tags keep their translations apart.
  EXPECT_NE(vm_a.vm_pd()->vm_tag(), vm_b.vm_pd()->vm_tag());
}

}  // namespace
}  // namespace nova
