#include "src/sim/snapshot.h"

#include <gtest/gtest.h>

namespace nova::sim {
namespace {

TEST(SnapWriterReader, AllTypesRoundTrip) {
  SnapWriter w;
  w.U8(0xab);
  w.U16(0xbeef);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefull);
  w.I64(-42);
  w.Bool(true);
  w.F64(3.25);
  w.Str("hello");
  const std::uint8_t blob[3] = {1, 2, 3};
  w.Bytes(blob, sizeof(blob));

  SnapReader r(w.data().data(), w.size());
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0xbeef);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_TRUE(r.Bool());
  EXPECT_EQ(r.F64(), 3.25);
  EXPECT_EQ(r.Str(), "hello");
  std::uint8_t out[3] = {};
  r.Bytes(out, sizeof(out));
  EXPECT_EQ(out[2], 3);
  EXPECT_EQ(r.Finish(), Status::kSuccess);
}

TEST(SnapReader, TruncationLatchesAndZeroes) {
  SnapWriter w;
  w.U32(7);
  SnapReader r(w.data().data(), w.size());
  EXPECT_EQ(r.U32(), 7u);
  EXPECT_EQ(r.U64(), 0u);  // Past the end: zero, latched.
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U32(), 0u);  // Still zero after the latch.
  EXPECT_EQ(r.Finish(), Status::kBadParameter);
}

TEST(SnapReader, PartialConsumptionFailsFinish) {
  SnapWriter w;
  w.U32(1);
  w.U32(2);
  SnapReader r(w.data().data(), w.size());
  EXPECT_EQ(r.U32(), 1u);
  EXPECT_TRUE(r.ok());  // No error yet...
  EXPECT_EQ(r.Finish(), Status::kBadParameter);  // ...but bytes remain.
}

TEST(Snapshot, EncodeDecodeRoundTrip) {
  Snapshot snap;
  snap.Section("b.second", 2).U64(99);
  SnapWriter& a = snap.Section("a.first", 1);
  a.U32(7);
  a.Str("state");

  Snapshot decoded;
  ASSERT_EQ(decoded.Decode(snap.Encode()), Status::kSuccess);
  ASSERT_TRUE(decoded.Has("a.first"));
  ASSERT_TRUE(decoded.Has("b.second"));
  EXPECT_EQ(decoded.SectionVersion("b.second"), 2);

  SnapReader r = decoded.Open("a.first", 1);
  EXPECT_EQ(r.U32(), 7u);
  EXPECT_EQ(r.Str(), "state");
  EXPECT_EQ(r.Finish(), Status::kSuccess);
}

TEST(Snapshot, EncodeIsDeterministic) {
  const auto build = [] {
    Snapshot snap;
    snap.Section("z", 1).U64(1);
    snap.Section("a", 1).U64(2);
    return snap.Encode();
  };
  EXPECT_EQ(build(), build());
}

TEST(Snapshot, MissingSectionYieldsFailedReader) {
  Snapshot snap;
  SnapReader r = snap.Open("nope", 1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U64(), 0u);
  EXPECT_EQ(r.Finish(), Status::kBadParameter);
}

TEST(Snapshot, VersionSkewYieldsFailedReader) {
  Snapshot snap;
  snap.Section("dev", 3).U64(1);
  SnapReader ok = snap.Open("dev", 3);
  EXPECT_TRUE(ok.ok());
  SnapReader skew = snap.Open("dev", 2);
  EXPECT_FALSE(skew.ok());
}

TEST(Snapshot, CorruptionDetectedOnDecode) {
  Snapshot snap;
  snap.Section("dev", 1).U64(0x1122334455667788ull);
  std::vector<std::uint8_t> bytes = snap.Encode();
  bytes.back() ^= 0xff;  // Flip payload: checksum must catch it.
  Snapshot decoded;
  EXPECT_NE(decoded.Decode(bytes), Status::kSuccess);
}

TEST(Snapshot, BadMagicRejected) {
  Snapshot snap;
  snap.Section("dev", 1).U64(1);
  std::vector<std::uint8_t> bytes = snap.Encode();
  bytes[0] ^= 0xff;
  Snapshot decoded;
  EXPECT_NE(decoded.Decode(bytes), Status::kSuccess);
}

TEST(Snapshot, PayloadBytesSumsSections) {
  Snapshot snap;
  snap.Section("a", 1).U64(1);  // 8 bytes.
  snap.Section("b", 1).U32(1);  // 4 bytes.
  EXPECT_EQ(snap.PayloadBytes(), 12u);
}

TEST(Snapshot, SectionReplaceDropsOldContent) {
  Snapshot snap;
  snap.Section("a", 1).U64(1);
  snap.Section("a", 1).U32(7);  // Restart the section.
  SnapReader r = snap.Open("a", 1);
  EXPECT_EQ(r.U32(), 7u);
  EXPECT_EQ(r.Finish(), Status::kSuccess);
}

}  // namespace
}  // namespace nova::sim
