#include "src/sim/time.h"

#include <gtest/gtest.h>

namespace nova::sim {
namespace {

TEST(Frequency, CyclesToPicosAtOneGhz) {
  const Frequency f = Frequency::MHz(1000);
  EXPECT_EQ(f.CyclesToPicos(1), 1000u);  // 1 cycle = 1 ns.
  EXPECT_EQ(f.CyclesToPicos(1'000'000'000), kPicosPerSecond);
}

TEST(Frequency, NonIntegralGhzIsExact) {
  // The Core i7 920 in the paper runs at 2.67 GHz.
  const Frequency f = Frequency::MHz(2670);
  // 2.67e9 cycles take exactly one second.
  EXPECT_EQ(f.CyclesToPicos(2'670'000'000ull), kPicosPerSecond);
  EXPECT_EQ(f.PicosToCycles(kPicosPerSecond), 2'670'000'000ull);
}

TEST(Frequency, RoundTripLongDurations) {
  const Frequency f = Frequency::MHz(2670);
  // An hour of simulated time must not overflow.
  const PicoSeconds hour = Seconds(3600);
  const Cycles c = f.PicosToCycles(hour);
  EXPECT_EQ(c, 3600ull * 2'670'000'000ull);
  EXPECT_EQ(f.CyclesToPicos(c), hour);
}

TEST(Frequency, PicosToCyclesTruncates) {
  const Frequency f = Frequency::MHz(1000);
  EXPECT_EQ(f.PicosToCycles(999), 0u);   // Less than one cycle.
  EXPECT_EQ(f.PicosToCycles(1000), 1u);
  EXPECT_EQ(f.PicosToCycles(1999), 1u);
}

TEST(Durations, Helpers) {
  EXPECT_EQ(Nanoseconds(1), 1000u);
  EXPECT_EQ(Microseconds(1), 1'000'000u);
  EXPECT_EQ(Milliseconds(1), 1'000'000'000u);
  EXPECT_EQ(Seconds(1), kPicosPerSecond);
}

}  // namespace
}  // namespace nova::sim
