// Tracer unit tests: interning, digest determinism, ring wraparound with
// digest coverage of evicted records, nested-span attribution through the
// TraceReport sink, disabled-mode no-ops and the Chrome JSON exporter.
//
// These tests exercise the raw Begin/End API that ScopedSpan wraps, so
// the raw-span rule does not apply in this file.
// nova-lint: allow-file(raw-span)
#include "src/sim/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace nova::sim {
namespace {

// FNV-1a 64 offset basis: the digest of an empty stream.
constexpr std::uint64_t kEmptyDigest = 1469598103934665603ull;

TEST(TracerTest, InterningIsIdempotentAndDense) {
  Tracer t;
  const std::uint16_t a = t.Intern("alpha");
  const std::uint16_t b = t.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(t.Intern("alpha"), a);
  EXPECT_EQ(t.Name(a), "alpha");
  EXPECT_EQ(t.Name(b), "beta");
  // Id 0 is reserved so "no name" is representable.
  EXPECT_NE(a, 0);
  EXPECT_NE(b, 0);
}

TEST(TracerTest, DisabledEmitsNothingAndKeepsDigestEmpty) {
  Tracer t;
  const std::uint16_t n = t.Intern("ev");
  ASSERT_FALSE(t.enabled());
  t.InstantAt(100, TraceCat::kVmExit, n, 0, 1, 2);
  t.BeginAt(200, TraceCat::kIpc, n, 0);
  t.EndAt(300, TraceCat::kIpc, n, 0);
  EXPECT_EQ(t.total_records(), 0u);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.digest(), kEmptyDigest);
}

TEST(TracerTest, DigestIsDeterministicAndOrderSensitive) {
  auto emit = [](Tracer& t, bool swapped) {
    const std::uint16_t a = t.Intern("a");
    const std::uint16_t b = t.Intern("b");
    t.set_enabled(true);
    if (swapped) {
      t.InstantAt(10, TraceCat::kIrq, b, 1, 7);
      t.InstantAt(10, TraceCat::kIrq, a, 1, 7);
    } else {
      t.InstantAt(10, TraceCat::kIrq, a, 1, 7);
      t.InstantAt(10, TraceCat::kIrq, b, 1, 7);
    }
  };
  Tracer t1, t2, t3;
  emit(t1, false);
  emit(t2, false);
  emit(t3, true);
  EXPECT_EQ(t1.digest(), t2.digest());
  EXPECT_NE(t1.digest(), t3.digest());
  EXPECT_NE(t1.digest(), kEmptyDigest);

  // Every record field participates: a changed arg changes the digest.
  Tracer t4;
  const std::uint16_t a = t4.Intern("a");
  t4.Intern("b");
  t4.set_enabled(true);
  t4.InstantAt(10, TraceCat::kIrq, a, 1, 8);
  EXPECT_NE(t4.digest(), t1.digest());
}

TEST(TracerTest, RingWrapsButDigestCoversEvictedRecords) {
  Tracer t(nullptr, /*capacity=*/4);
  const std::uint16_t n = t.Intern("tick");
  t.set_enabled(true);
  for (std::uint64_t i = 0; i < 10; ++i) {
    t.InstantAt(static_cast<PicoSeconds>(i), TraceCat::kSched, n, 0, i);
  }
  EXPECT_EQ(t.total_records(), 10u);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  // Retained window is the newest four, oldest first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t.at(i).arg0, 6u + i);
  }

  // A tracer that saw only the retained four records digests differently:
  // the digest covers the evicted six as well.
  Tracer tail(nullptr, 4);
  const std::uint16_t n2 = tail.Intern("tick");
  tail.set_enabled(true);
  for (std::uint64_t i = 6; i < 10; ++i) {
    tail.InstantAt(static_cast<PicoSeconds>(i), TraceCat::kSched, n2, 0, i);
  }
  EXPECT_NE(t.digest(), tail.digest());

  // And a same-capacity tracer fed the identical full stream agrees.
  Tracer full(nullptr, 4);
  const std::uint16_t n3 = full.Intern("tick");
  full.set_enabled(true);
  for (std::uint64_t i = 0; i < 10; ++i) {
    full.InstantAt(static_cast<PicoSeconds>(i), TraceCat::kSched, n3, 0, i);
  }
  EXPECT_EQ(t.digest(), full.digest());
}

TEST(TracerTest, SinkPlusRetainedWindowCoverTheFullRunExactlyOnce) {
  Tracer t(nullptr, /*capacity=*/4);
  TraceReport report;
  t.set_sink(&report);
  const std::uint16_t n = t.Intern("tick");
  t.set_enabled(true);
  for (std::uint64_t i = 0; i < 10; ++i) {
    t.InstantAt(static_cast<PicoSeconds>(i), TraceCat::kSched, n, 0, i);
  }
  // Six records were evicted into the sink; folding the retained window
  // once accounts for the other four.
  EXPECT_EQ(report.Count(n), 6u);
  report.FoldRemaining(t);
  EXPECT_EQ(report.Count(n), 10u);
}

TEST(TraceReportTest, NestedSpansChargeInclusiveTimePerName) {
  Tracer t;
  TraceReport report;
  const std::uint16_t outer = t.Intern("outer");
  const std::uint16_t inner = t.Intern("inner");
  t.set_enabled(true);
  t.BeginAt(0, TraceCat::kVmExit, outer, 0);
  t.BeginAt(10, TraceCat::kIpc, inner, 0);
  t.EndAt(20, TraceCat::kIpc, inner, 0);
  t.EndAt(30, TraceCat::kVmExit, outer, 0);
  report.FoldRemaining(t);
  EXPECT_EQ(report.Count(outer), 1u);
  EXPECT_EQ(report.Count(inner), 1u);
  EXPECT_EQ(report.TotalPs(outer), 30);
  EXPECT_EQ(report.TotalPs(inner), 10);
}

TEST(TraceReportTest, SpansPairPerTid) {
  // Concurrent spans on different tids must not steal each other's Begin.
  Tracer t;
  TraceReport report;
  const std::uint16_t a = t.Intern("cpu0-span");
  const std::uint16_t b = t.Intern("cpu1-span");
  t.set_enabled(true);
  t.BeginAt(0, TraceCat::kVmExit, a, 0);
  t.BeginAt(5, TraceCat::kVmExit, b, 1);
  t.EndAt(50, TraceCat::kVmExit, a, 0);
  t.EndAt(6, TraceCat::kVmExit, b, 1);
  report.FoldRemaining(t);
  EXPECT_EQ(report.TotalPs(a), 50);
  EXPECT_EQ(report.TotalPs(b), 1);
}

TEST(ScopedSpanTest, EmitsBeginEndAndSkipsClockWhenDisabled) {
  Tracer t;
  const std::uint16_t n = t.Intern("span");
  int clock_calls = 0;
  PicoSeconds now = 100;
  auto clock = [&] {
    ++clock_calls;
    return now;
  };
  {
    ScopedSpan span(&t, TraceCat::kIpc, n, 0, clock);
    now = 250;
  }
  EXPECT_EQ(clock_calls, 0) << "disabled tracer must not read the clock";
  EXPECT_EQ(t.total_records(), 0u);

  t.set_enabled(true);
  now = 100;
  {
    ScopedSpan span(&t, TraceCat::kIpc, n, 2, clock, 42);
    now = 250;
  }
  ASSERT_EQ(t.total_records(), 2u);
  EXPECT_EQ(t.at(0).type, static_cast<std::uint8_t>(TraceType::kBegin));
  EXPECT_EQ(t.at(0).ts, 100);
  EXPECT_EQ(t.at(0).arg0, 42u);
  EXPECT_EQ(t.at(0).tid, 2);
  EXPECT_EQ(t.at(1).type, static_cast<std::uint8_t>(TraceType::kEnd));
  EXPECT_EQ(t.at(1).ts, 250);
}

TEST(TracerTest, ResetClearsStreamButKeepsNames) {
  Tracer t;
  const std::uint16_t n = t.Intern("ev");
  t.set_enabled(true);
  t.InstantAt(1, TraceCat::kFault, n, 0);
  ASSERT_NE(t.digest(), kEmptyDigest);
  t.Reset();
  EXPECT_EQ(t.total_records(), 0u);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.digest(), kEmptyDigest);
  EXPECT_EQ(t.Name(n), "ev");
  EXPECT_EQ(t.Intern("ev"), n);
}

TEST(TracerTest, ChromeJsonExportsRetainedWindow) {
  Tracer t;
  const std::uint16_t span = t.Intern("vmexit \"quoted\"");
  const std::uint16_t inst = t.Intern("irq");
  t.set_enabled(true);
  t.BeginAt(1'000'000, TraceCat::kVmExit, span, 0, 0xdead);
  t.InstantAt(1'500'000, TraceCat::kIrq, inst, kDeviceTid, 9);
  t.EndAt(2'000'000, TraceCat::kVmExit, span, 0);

  const std::string path = ::testing::TempDir() + "/trace_test.json";
  ASSERT_TRUE(t.WriteChromeJsonFile(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string body(1 << 16, '\0');
  body.resize(std::fread(body.data(), 1, body.size(), f));
  std::fclose(f);

  EXPECT_EQ(body.front(), '{');
  EXPECT_NE(body.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(body.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(body.find("vmexit \\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(body.find('\xff'), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nova::sim
