// Enum/name drift guards: every hw::ExitReason, sim::FaultKind and
// sim::Status value must map to a non-null, non-fallback, unique name.
// Appending an enumerator without extending its name switch (or the kNum*
// constant) fails here instead of silently printing "?" in traces.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/hw/guest_state.h"
#include "src/sim/fault.h"
#include "src/sim/status.h"
#include "src/sim/trace.h"

namespace nova {
namespace {

TEST(EnumCoverageTest, ExitReasonNamesAreCompleteAndUnique) {
  std::set<std::string> seen;
  for (int i = 0; i < hw::kNumExitReasons; ++i) {
    const char* name = hw::ExitReasonName(static_cast<hw::ExitReason>(i));
    ASSERT_NE(name, nullptr) << "ExitReason " << i;
    EXPECT_STRNE(name, "") << "ExitReason " << i;
    EXPECT_STRNE(name, "?") << "ExitReason " << i << " hit the fallback";
    EXPECT_TRUE(seen.insert(name).second)
        << "duplicate ExitReason name: " << name;
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(hw::kNumExitReasons));
}

TEST(EnumCoverageTest, FaultKindNamesAreCompleteAndUnique) {
  std::set<std::string> seen;
  for (int i = 0; i < sim::kNumFaultKinds; ++i) {
    const char* name = sim::FaultKindName(static_cast<sim::FaultKind>(i));
    ASSERT_NE(name, nullptr) << "FaultKind " << i;
    EXPECT_STRNE(name, "") << "FaultKind " << i;
    EXPECT_STRNE(name, "?") << "FaultKind " << i << " hit the fallback";
    EXPECT_TRUE(seen.insert(name).second)
        << "duplicate FaultKind name: " << name;
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(sim::kNumFaultKinds));
}

TEST(EnumCoverageTest, StatusNamesAreCompleteAndUnique) {
  std::set<std::string> seen;
  for (int i = 0; i < kNumStatuses; ++i) {
    const char* name = StatusName(static_cast<Status>(i));
    ASSERT_NE(name, nullptr) << "Status " << i;
    EXPECT_STRNE(name, "") << "Status " << i;
    EXPECT_STRNE(name, "kUnknown") << "Status " << i << " hit the fallback";
    EXPECT_TRUE(seen.insert(name).second) << "duplicate Status name: " << name;
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kNumStatuses));
}

TEST(EnumCoverageTest, TraceCatNamesAreCompleteAndUnique) {
  std::set<std::string> seen;
  for (int i = 0; i < sim::kNumTraceCats; ++i) {
    const char* name = sim::TraceCatName(static_cast<sim::TraceCat>(i));
    ASSERT_NE(name, nullptr) << "TraceCat " << i;
    EXPECT_STRNE(name, "?") << "TraceCat " << i << " hit the fallback";
    EXPECT_TRUE(seen.insert(name).second)
        << "duplicate TraceCat name: " << name;
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(sim::kNumTraceCats));
}

}  // namespace
}  // namespace nova
