#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace nova::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(Nanoseconds(30), [&] { order.push_back(3); });
  q.ScheduleAt(Nanoseconds(10), [&] { order.push_back(1); });
  q.ScheduleAt(Nanoseconds(20), [&] { order.push_back(2); });
  q.AdvanceTo(Nanoseconds(25));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  q.AdvanceTo(Nanoseconds(100));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameDeadlineIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(Nanoseconds(10), [&order, i] { order.push_back(i); });
  }
  q.AdvanceTo(Nanoseconds(10));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbackMaySchedule) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(Nanoseconds(10), [&] {
    ++fired;
    q.ScheduleAfter(Nanoseconds(5), [&] { ++fired; });
  });
  q.AdvanceTo(Nanoseconds(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), Nanoseconds(20));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  const auto id = q.ScheduleAt(Nanoseconds(10), [&] { ++fired; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // Second cancel is a no-op.
  q.AdvanceTo(Nanoseconds(20));
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(0));
  EXPECT_FALSE(q.Cancel(1234));
}

TEST(EventQueue, RunOneJumpsToDeadline) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(Microseconds(7), [&] { ++fired; });
  EXPECT_TRUE(q.RunOne());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), Microseconds(7));
  EXPECT_FALSE(q.RunOne());
}

TEST(EventQueue, NextDeadlineSkipsCancelled) {
  EventQueue q;
  const auto id = q.ScheduleAt(Nanoseconds(5), [] {});
  q.ScheduleAt(Nanoseconds(9), [] {});
  q.Cancel(id);
  EXPECT_EQ(q.NextDeadline(), Nanoseconds(9));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PastEventsFireOnAdvance) {
  EventQueue q;
  q.AdvanceTo(Nanoseconds(100));
  int fired = 0;
  q.ScheduleAt(Nanoseconds(10), [&] { ++fired; });  // Already in the past.
  q.AdvanceTo(Nanoseconds(100));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), Nanoseconds(100));  // Time never moves backwards.
}

}  // namespace
}  // namespace nova::sim
