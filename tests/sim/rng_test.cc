#include "src/sim/rng.h"

#include <gtest/gtest.h>

namespace nova::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Below(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng r(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = r.Range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = r.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // Roughly uniform.
}

}  // namespace
}  // namespace nova::sim
