#include "src/sim/stats.h"

#include <gtest/gtest.h>

namespace nova::sim {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Distribution, TracksMoments) {
  Distribution d;
  for (std::uint64_t v : {10, 20, 30}) {
    d.Record(v);
  }
  EXPECT_EQ(d.count(), 3u);
  EXPECT_EQ(d.sum(), 60u);
  EXPECT_EQ(d.min(), 10u);
  EXPECT_EQ(d.max(), 30u);
  EXPECT_DOUBLE_EQ(d.Mean(), 20.0);
}

TEST(Distribution, Percentiles) {
  Distribution d;
  for (std::uint64_t v = 1; v <= 100; ++v) {
    d.Record(v);
  }
  EXPECT_EQ(d.Percentile(0), 1u);
  EXPECT_EQ(d.Percentile(100), 100u);
  EXPECT_NEAR(static_cast<double>(d.Percentile(50)), 50.0, 1.0);
  EXPECT_NEAR(static_cast<double>(d.Percentile(99)), 99.0, 1.0);
}

TEST(Distribution, EmptyPercentileIsZero) {
  Distribution d;
  EXPECT_EQ(d.Percentile(50), 0u);
}

TEST(Distribution, ReservoirRetainsLateValues) {
  // Stream 10x the reservoir capacity. A keep-the-prefix scheme would
  // never see past the first `cap` values and report p50 ~ cap/2;
  // Algorithm R keeps a uniform sample, so the percentiles track the full
  // stream 1..10*cap.
  constexpr std::size_t kCap = 256;
  Distribution d(kCap);
  for (std::uint64_t v = 1; v <= 10 * kCap; ++v) {
    d.Record(v);
  }
  EXPECT_EQ(d.count(), 10 * kCap);
  EXPECT_GT(d.Percentile(50), kCap);  // Prefix-only sampling caps at kCap.
  EXPECT_NEAR(static_cast<double>(d.Percentile(50)), 5.0 * kCap, 1.5 * kCap);
  EXPECT_GT(d.Percentile(90), 6 * kCap);
}

TEST(Distribution, ReservoirDeterministicAcrossReset) {
  // Fixed RNG seed: the same stream yields the same reservoir after Reset,
  // keeping simulation runs bit-for-bit reproducible.
  constexpr std::size_t kCap = 64;
  Distribution d(kCap);
  auto feed = [&d] {
    for (std::uint64_t v = 1; v <= 1000; ++v) {
      d.Record(v * 7);
    }
  };
  feed();
  const std::uint64_t p50 = d.Percentile(50);
  const std::uint64_t p99 = d.Percentile(99);
  d.Reset();
  EXPECT_EQ(d.count(), 0u);
  feed();
  EXPECT_EQ(d.Percentile(50), p50);
  EXPECT_EQ(d.Percentile(99), p99);
}

TEST(UtilizationTracker, HalfBusy) {
  UtilizationTracker u;
  u.Reset(0);
  u.SetBusy(0, true);
  u.SetBusy(Microseconds(5), false);
  EXPECT_DOUBLE_EQ(u.Utilization(Microseconds(10)), 0.5);
}

TEST(UtilizationTracker, OpenBusyIntervalCounts) {
  UtilizationTracker u;
  u.Reset(0);
  u.SetBusy(Microseconds(2), true);
  // Still busy at query time.
  EXPECT_DOUBLE_EQ(u.Utilization(Microseconds(4)), 0.5);
}

TEST(UtilizationTracker, RedundantTransitionsIgnored) {
  UtilizationTracker u;
  u.Reset(0);
  u.SetBusy(Microseconds(1), true);
  u.SetBusy(Microseconds(2), true);  // No-op.
  u.SetBusy(Microseconds(3), false);
  u.SetBusy(Microseconds(4), false);  // No-op.
  EXPECT_DOUBLE_EQ(u.Utilization(Microseconds(4)), 0.5);
}

TEST(StatRegistry, NamedCounters) {
  StatRegistry reg;
  reg.counter("Port I/O").Add(5);
  reg.counter("HLT").Add();
  EXPECT_EQ(reg.Value("Port I/O"), 5u);
  EXPECT_EQ(reg.Value("HLT"), 1u);
  EXPECT_EQ(reg.Value("missing"), 0u);
  reg.ResetAll();
  EXPECT_EQ(reg.Value("Port I/O"), 0u);
}

}  // namespace
}  // namespace nova::sim
