// SMP kernel semantics: cross-core portal calls with SC handoff, TLB
// shootdown on remote unmap, halted-vCPU wake on the home core, and
// cross-core teardown of semaphore waiters.
#include <gtest/gtest.h>

#include <vector>

#include "src/hw/isa.h"
#include "tests/hv/test_util.h"

namespace nova::hv {
namespace {

class SmpTest : public HvTest {
 protected:
  SmpTest() : HvTest(TwoCpuConfig()) {}

  static hw::MachineConfig TwoCpuConfig() {
    return hw::MachineConfig{.cpus = {&hw::CoreI7_920(), &hw::CoreI7_920()},
                             .ram_size = 512ull << 20};
  }
};

TEST_F(SmpTest, CrossCorePtCallRoundTripHandsOffSc) {
  // Caller's SC lives on core 0; the portal handler is a local EC bound
  // to core 1. The call must migrate the work: the handler executes on
  // its home core (charged there), the caller blocks until the reply,
  // and the caller's SC stays home on core 0 afterwards.
  int handler_runs = 0;
  std::uint32_t handler_cpu = ~0u;
  Ec* handler = nullptr;
  ASSERT_EQ(hv_.CreateEcLocal(root_, 100, kSelOwnPd, /*cpu=*/1,
                              [&](std::uint64_t) {
                                ++handler_runs;
                                handler_cpu = handler->cpu();
                                machine_.cpu(1).Charge(500);
                              },
                              &handler),
            Status::kSuccess);
  ASSERT_EQ(hv_.CreatePt(root_, 101, 100, 0, 0), Status::kSuccess);

  Status call_status = Status::kTimeout;
  Ec* caller = nullptr;
  ASSERT_EQ(hv_.CreateEcGlobal(root_, 102, kSelOwnPd, /*cpu=*/0,
                               [&] {
                                 call_status = hv_.Call(caller, 101);
                                 caller->set_block_state(Ec::BlockState::kBlockedSm);
                               },
                               &caller),
            Status::kSuccess);
  ASSERT_EQ(hv_.CreateSc(root_, 103, 102, 10, 1'000'000), Status::kSuccess);

  ASSERT_TRUE(hv_.StepOnce());

  EXPECT_EQ(call_status, Status::kSuccess);
  EXPECT_EQ(handler_runs, 1);
  EXPECT_EQ(handler_cpu, 1u);
  EXPECT_EQ(hv_.EventCount("ipc-xcalls"), 1u);
  // The handler core did the portal work on the donated slice...
  EXPECT_GT(machine_.cpu(1).NowPs(), 0u);
  // ...and the blocked caller resumed no earlier than the remote reply.
  EXPECT_GE(machine_.cpu(0).NowPs(), machine_.cpu(1).NowPs());
  // The caller EC itself never migrated: its SC is home on core 0.
  EXPECT_EQ(caller->cpu(), 0u);
  EXPECT_EQ(caller->sc()->cpu(), 0u);
}

TEST_F(SmpTest, RemoteUnmapShootsDownStaleCores) {
  // A VM that has run vCPUs on both cores holds tagged translations in
  // both TLBs. Revoking its memory from core 0 must IPI core 1, flush,
  // and wait for the ack (visible as remote cycle cost).
  Pd* vm = nullptr;
  ASSERT_EQ(hv_.CreatePd(root_, 100, "vm", true, &vm), Status::kSuccess);
  const std::uint64_t base_page = hv_.kernel_reserve() >> hw::kPageShift;
  ASSERT_EQ(hv_.Delegate(root_, 100,
                         Crd{CrdKind::kMem, base_page, 4, perm::kRwx}, 0),
            Status::kSuccess);
  // The VM has executed on both cores (what RunVcpu records).
  vm->NoteCore(0);
  vm->NoteCore(1);

  const sim::PicoSeconds remote_before = machine_.cpu(1).NowPs();
  ASSERT_EQ(hv_.Revoke(root_, Crd{CrdKind::kMem, base_page, 4, perm::kRwx},
                       /*include_self=*/false),
            Status::kSuccess);

  // The remote core is IPI'd twice: once for the VM's tagged
  // translations, once for the untagged host mapping flush. Either way
  // it paid for the flush + ack.
  EXPECT_EQ(hv_.EventCount("TLB Shootdown"), 2u);
  EXPECT_GT(machine_.cpu(1).NowPs(), remote_before);
  // The initiator waited for the ack before completing the revoke.
  EXPECT_GE(machine_.cpu(0).NowPs(), machine_.cpu(1).NowPs());
}

TEST_F(SmpTest, HaltedVcpuWakesOnHomeCore) {
  // A vCPU halted on core 1 is parked there and must resume there; core 0
  // never runs a cycle of it.
  constexpr CapSel kVmPd = 100, kVcpuSel = 101, kScSel = 102;
  constexpr CapSel kEvtBase = 200, kHandlerBase = 300, kPortalBase = 320;
  Pd* vm = nullptr;
  ASSERT_EQ(hv_.CreatePd(root_, kVmPd, "vm", true, &vm), Status::kSuccess);
  const std::uint64_t base_page = hv_.kernel_reserve() >> hw::kPageShift;
  ASSERT_EQ(hv_.Delegate(root_, kVmPd,
                         Crd{CrdKind::kMem, base_page, 13, perm::kRwx}, 0),
            Status::kSuccess);
  Ec* vcpu = nullptr;
  ASSERT_EQ(hv_.CreateVcpu(root_, kVcpuSel, kVmPd, /*cpu=*/1, kEvtBase, &vcpu),
            Status::kSuccess);

  int cpuid_exits = 0;
  Ec* cpuid_handler = nullptr;
  const auto cpuid_idx = static_cast<CapSel>(Event::kCpuid);
  ASSERT_EQ(hv_.CreateEcLocal(root_, kHandlerBase + cpuid_idx, kSelOwnPd,
                              /*cpu=*/1,
                              [&](std::uint64_t) {
                                ++cpuid_exits;
                                Utcb& u = cpuid_handler->utcb();
                                u.arch.rip += u.arch.insn_len;
                              },
                              &cpuid_handler),
            Status::kSuccess);
  ASSERT_EQ(hv_.CreatePt(root_, kPortalBase + cpuid_idx, kHandlerBase + cpuid_idx,
                         mtd::kRip, static_cast<std::uint64_t>(Event::kCpuid)),
            Status::kSuccess);
  ASSERT_EQ(hv_.Delegate(root_, kVmPd,
                         Crd::Obj(kPortalBase + cpuid_idx, 0, perm::kCall),
                         kEvtBase + cpuid_idx),
            Status::kSuccess);
  Ec* hlt_handler = nullptr;
  const auto hlt_idx = static_cast<CapSel>(Event::kHlt);
  ASSERT_EQ(hv_.CreateEcLocal(root_, kHandlerBase + hlt_idx, kSelOwnPd, /*cpu=*/1,
                              [&](std::uint64_t) {
                                hlt_handler->utcb().arch.halted = true;
                              },
                              &hlt_handler),
            Status::kSuccess);
  ASSERT_EQ(hv_.CreatePt(root_, kPortalBase + hlt_idx, kHandlerBase + hlt_idx,
                         mtd::kSta, static_cast<std::uint64_t>(Event::kHlt)),
            Status::kSuccess);
  ASSERT_EQ(hv_.Delegate(root_, kVmPd,
                         Crd::Obj(kPortalBase + hlt_idx, 0, perm::kCall),
                         kEvtBase + hlt_idx),
            Status::kSuccess);
  hw::isa::Assembler as(0x1000);
  as.Hlt();
  as.Cpuid();
  as.Hlt();
  (void)machine_.mem().Write((base_page << hw::kPageShift) + as.base(),
                             as.bytes().data(), as.bytes().size());
  vcpu->gstate().rip = 0x1000;
  ASSERT_EQ(hv_.CreateSc(root_, kScSel, kVcpuSel, 1, 30'000'000), Status::kSuccess);

  for (int i = 0; i < 50 && hv_.StepOnce(); ++i) {
  }
  ASSERT_EQ(vcpu->block_state(), Ec::BlockState::kBlockedHalt);
  EXPECT_EQ(cpuid_exits, 0);

  const std::uint64_t core0_cycles = machine_.cpu(0).cycles();
  hv_.WakeEc(vcpu);
  vcpu->gstate().halted = false;  // What the waking VMM/engine does.
  for (int i = 0; i < 50 && hv_.StepOnce(); ++i) {
  }
  // The vCPU resumed on its home core and made guest progress there.
  EXPECT_EQ(cpuid_exits, 1);
  EXPECT_EQ(vcpu->cpu(), 1u);
  EXPECT_EQ(vcpu->block_state(), Ec::BlockState::kBlockedHalt);
  // Core 0 never executed any of it.
  EXPECT_EQ(machine_.cpu(0).cycles(), core0_cycles);
}

TEST_F(SmpTest, DestroyPdAbortsWaitersOnOtherCores) {
  // A semaphore owned by a dying domain: a waiter blocked on another core
  // must be woken there with an abort status, not left stranded.
  constexpr CapSel kChildPd = 100, kChildSm = 50, kRootSmSlot = 60;
  Pd* child = nullptr;
  ASSERT_EQ(hv_.CreatePd(root_, kChildPd, "child", false, &child), Status::kSuccess);
  ASSERT_EQ(hv_.CreateSm(child, kChildSm, 0), Status::kSuccess);
  // Hand the child a capability to root so it can delegate its semaphore
  // upward (test plumbing; a real child would use IPC).
  ASSERT_EQ(hv_.Delegate(root_, kChildPd, Crd::Obj(kSelOwnPd, 0, perm::kAll), 70),
            Status::kSuccess);
  ASSERT_EQ(hv_.Delegate(child, 70,
                         Crd::Obj(kChildSm, 0, perm::kSmDown | perm::kDelegate),
                         kRootSmSlot),
            Status::kSuccess);

  std::vector<Hypervisor::DownResult> waits;
  Ec* waiter = nullptr;
  ASSERT_EQ(hv_.CreateEcGlobal(root_, 101, kSelOwnPd, /*cpu=*/1,
                               [&] {
                                 waits.push_back(hv_.SmDown(waiter, kRootSmSlot));
                                 if (waits.back() !=
                                     Hypervisor::DownResult::kBlocked) {
                                   waiter->set_block_state(Ec::BlockState::kBlockedSm);
                                 }
                               },
                               &waiter),
            Status::kSuccess);
  ASSERT_EQ(hv_.CreateSc(root_, 102, 101, 10, 1'000'000), Status::kSuccess);

  ASSERT_TRUE(hv_.StepOnce());  // The waiter blocks on core 1.
  ASSERT_EQ(waits.size(), 1u);
  ASSERT_EQ(waits[0], Hypervisor::DownResult::kBlocked);

  // Teardown from core 0.
  ASSERT_EQ(hv_.DestroyPd(root_, kChildPd), Status::kSuccess);

  // The waiter reruns on its own core and observes the abort.
  for (int i = 0; i < 10 && hv_.StepOnce(); ++i) {
  }
  ASSERT_EQ(waits.size(), 2u);
  EXPECT_EQ(waits[1], Hypervisor::DownResult::kAborted);
  EXPECT_EQ(waiter->cpu(), 1u);
}

}  // namespace
}  // namespace nova::hv
