// The vTLB / shadow-paging algorithm (§5.3): fills, guest faults, flushes
// on CR3 writes, INVLPG handling, MMIO detection under shadow paging.
#include <gtest/gtest.h>

#include "src/guest/guest_pt.h"
#include "src/hw/isa.h"
#include "tests/hv/test_util.h"

namespace nova::hv {
namespace {

class VtlbTest : public HvTest {
 protected:
  static constexpr CapSel kVmPd = 100;
  static constexpr CapSel kVcpuSel = 101;
  static constexpr CapSel kScSel = 102;
  static constexpr CapSel kEvtBase = 200;
  static constexpr CapSel kHandlerBase = 300;
  static constexpr CapSel kPortalBase = 320;

  // Guest layout (GPA == GVA identity for code; extra mappings per test):
  static constexpr std::uint64_t kGuestPtRoot = 0x100000;  // Guest CR3.
  static constexpr std::uint64_t kGuestPtPool = 0x110000;  // Guest PT frames.

  VtlbTest() : HvTest(ShadowConfig()) {
    EXPECT_EQ(hv_.CreatePd(root_, kVmPd, "vm", true, &vm_), Status::kSuccess);
    guest_base_page_ = hv_.kernel_reserve() >> hw::kPageShift;
    EXPECT_EQ(hv_.Delegate(root_, kVmPd,
                           Crd{CrdKind::kMem, guest_base_page_, 13, perm::kRwx}, 0),
              Status::kSuccess);
    EXPECT_EQ(hv_.CreateVcpu(root_, kVcpuSel, kVmPd, 0, kEvtBase, &vcpu_),
              Status::kSuccess);
    // Switch to shadow paging: what NOVA does on CPUs without EPT/NPT.
    hw::VmControls& ctl = vcpu_->ctl();
    ctl.mode = hw::TranslationMode::kShadow;
    ctl.nested_root = 0;  // The kernel allocates the shadow table lazily.
    ctl.intercept_cr3 = true;
    ctl.intercept_invlpg = true;
    gpt_ = std::make_unique<guest::GuestPageTableBuilder>(
        &machine_.mem(), [this](std::uint64_t gpa) { return GuestHpa(gpa); },
        kGuestPtPool);
  }

  // Yonah: a CPU without nested paging, the paper's shadow-paging target.
  static hw::MachineConfig ShadowConfig() {
    return hw::MachineConfig{.cpus = {&hw::CoreDuoT2500()}, .ram_size = 512ull << 20};
  }

  hw::PhysAddr GuestHpa(std::uint64_t gpa) {
    return (guest_base_page_ << hw::kPageShift) + gpa;
  }

  // Build a guest page-table mapping by writing real PTEs into guest RAM.
  void GuestMap(std::uint64_t root_gpa, std::uint64_t gva, std::uint64_t gpa,
                std::uint64_t flags) {
    ASSERT_EQ(gpt_->Map(root_gpa, gva, gpa, hw::kPageSize, flags), Status::kSuccess);
  }

  void InstallPortal(Event event, Mtd m, Ec::Handler fn) {
    const auto idx = static_cast<CapSel>(event);
    Ec* handler = nullptr;
    ASSERT_EQ(hv_.CreateEcLocal(root_, kHandlerBase + idx, kSelOwnPd, 0,
                                std::move(fn), &handler),
              Status::kSuccess);
    handlers_[idx] = handler;
    ASSERT_EQ(hv_.CreatePt(root_, kPortalBase + idx, kHandlerBase + idx, m,
                           static_cast<std::uint64_t>(event)),
              Status::kSuccess);
    ASSERT_EQ(hv_.Delegate(root_, kVmPd, Crd::Obj(kPortalBase + idx, 0, perm::kCall),
                           kEvtBase + idx),
              Status::kSuccess);
  }

  void InstallHltPortal() {
    InstallPortal(Event::kHlt, mtd::kSta, [&](std::uint64_t) {
      handlers_[static_cast<int>(Event::kHlt)]->utcb().arch.halted = true;
    });
  }

  void InstallProgram(const hw::isa::Assembler& as) {
    (void)machine_.mem().Write(GuestHpa(as.base()), as.bytes().data(), as.bytes().size());
  }

  void StartAndRun(int steps = 20) {
    ASSERT_EQ(hv_.CreateSc(root_, kScSel, kVcpuSel, 1, 30'000'000), Status::kSuccess);
    for (int i = 0; i < steps && hv_.StepOnce(); ++i) {
    }
  }

  Pd* vm_ = nullptr;
  Ec* vcpu_ = nullptr;
  std::uint64_t guest_base_page_ = 0;
  std::unique_ptr<guest::GuestPageTableBuilder> gpt_;
  Ec* handlers_[kNumEvents] = {};
};

TEST_F(VtlbTest, FillsShadowEntriesOnDemand) {
  GuestMap(kGuestPtRoot, 0x1000, 0x1000, hw::pte::kWritable);    // Code.
  GuestMap(kGuestPtRoot, 0x400000, 0x200000, hw::pte::kWritable);  // Data.

  hw::isa::Assembler as(0x1000);
  as.MovImm(0, 1234);
  as.StoreAbs(0, 0x400010);
  as.LoadAbs(1, 0x400010);
  as.Hlt();
  InstallProgram(as);
  vcpu_->gstate().rip = 0x1000;
  vcpu_->gstate().cr3 = kGuestPtRoot;
  vcpu_->gstate().paging = true;

  InstallHltPortal();
  StartAndRun();

  EXPECT_EQ(vcpu_->gstate().regs[1], 1234u);
  // The store went through GVA 0x400000 -> GPA 0x200000 -> host frame.
  EXPECT_EQ(machine_.mem().Read64(GuestHpa(0x200010)), 1234u);
  // At least two fills: the code page and the data page.
  EXPECT_GE(hv_.EventCount("vTLB Fill"), 2u);
  EXPECT_EQ(hv_.EventCount("Guest Page Fault"), 0u);
}

TEST_F(VtlbTest, GuestFaultInjectedToGuestHandler) {
  GuestMap(kGuestPtRoot, 0x1000, 0x1000, hw::pte::kWritable);
  GuestMap(kGuestPtRoot, 0x3000, 0x3000, hw::pte::kWritable);  // #PF handler.

  hw::isa::Assembler handler_code(0x3000);
  handler_code.ReadCr2(7);
  handler_code.Hlt();
  InstallProgram(handler_code);

  hw::isa::Assembler as(0x1000);
  as.SetIdt(hw::kVectorPageFault, 0x3000);
  as.LoadAbs(0, 0x500000);  // Not mapped in the guest page table.
  as.Hlt();
  InstallProgram(as);
  vcpu_->gstate().rip = 0x1000;
  vcpu_->gstate().cr3 = kGuestPtRoot;
  vcpu_->gstate().paging = true;

  InstallHltPortal();
  StartAndRun();

  EXPECT_EQ(hv_.EventCount("Guest Page Fault"), 1u);
  EXPECT_EQ(vcpu_->gstate().regs[7], 0x500000u);  // Guest handler saw CR2.
}

TEST_F(VtlbTest, WriteProtectionFaultsToGuest) {
  GuestMap(kGuestPtRoot, 0x1000, 0x1000, hw::pte::kWritable);
  GuestMap(kGuestPtRoot, 0x3000, 0x3000, hw::pte::kWritable);
  GuestMap(kGuestPtRoot, 0x400000, 0x200000, 0);  // Read-only mapping.

  hw::isa::Assembler handler_code(0x3000);
  handler_code.ReadCr2(7);
  handler_code.Hlt();
  InstallProgram(handler_code);

  hw::isa::Assembler as(0x1000);
  as.SetIdt(hw::kVectorPageFault, 0x3000);
  as.LoadAbs(1, 0x400000);   // Read: fine.
  as.StoreAbs(1, 0x400000);  // Write: guest #PF.
  as.Hlt();
  InstallProgram(as);
  vcpu_->gstate().rip = 0x1000;
  vcpu_->gstate().cr3 = kGuestPtRoot;
  vcpu_->gstate().paging = true;

  InstallHltPortal();
  StartAndRun();
  EXPECT_EQ(hv_.EventCount("Guest Page Fault"), 1u);
  EXPECT_EQ(vcpu_->gstate().regs[7], 0x400000u);
}

TEST_F(VtlbTest, Cr3WriteFlushesShadowTable) {
  GuestMap(kGuestPtRoot, 0x1000, 0x1000, hw::pte::kWritable);
  GuestMap(kGuestPtRoot, 0x400000, 0x200000, hw::pte::kWritable);
  // A second address space mapping the same code but different data.
  constexpr std::uint64_t kRoot2 = 0x108000;
  GuestMap(kRoot2, 0x1000, 0x1000, hw::pte::kWritable);
  GuestMap(kRoot2, 0x400000, 0x300000, hw::pte::kWritable);

  hw::isa::Assembler as(0x1000);
  as.MovImm(0, 0xaaa);
  as.StoreAbs(0, 0x400000);  // Lands in GPA 0x200000.
  as.MovCr3Imm(kRoot2);      // Address-space switch.
  as.MovImm(0, 0xbbb);
  as.StoreAbs(0, 0x400000);  // Lands in GPA 0x300000.
  as.Hlt();
  InstallProgram(as);
  vcpu_->gstate().rip = 0x1000;
  vcpu_->gstate().cr3 = kGuestPtRoot;
  vcpu_->gstate().paging = true;

  InstallHltPortal();
  StartAndRun();

  EXPECT_EQ(machine_.mem().Read64(GuestHpa(0x200000)), 0xaaau);
  EXPECT_EQ(machine_.mem().Read64(GuestHpa(0x300000)), 0xbbbu);
  EXPECT_EQ(hv_.EventCount("CR Read/Write"), 1u);
  EXPECT_EQ(hv_.EventCount("vTLB Flush"), 1u);
  // The switch forced refills for the second address space.
  EXPECT_GE(hv_.EventCount("vTLB Fill"), 4u);
}

TEST_F(VtlbTest, InvlpgDropsStaleTranslation) {
  GuestMap(kGuestPtRoot, 0x1000, 0x1000, hw::pte::kWritable);
  GuestMap(kGuestPtRoot, 0x400000, 0x200000, hw::pte::kWritable);

  // Guest edits its own PTE, then INVLPGs. The guest's PT pages live at
  // GPA kGuestPtRoot onward; map them into guest VA space so the guest can
  // write the PTE (identity).
  GuestMap(kGuestPtRoot, kGuestPtRoot, kGuestPtRoot, hw::pte::kWritable);
  for (std::uint64_t f = kGuestPtPool; f < kGuestPtPool + 0x8000; f += 0x1000) {
    GuestMap(kGuestPtRoot, f, f, hw::pte::kWritable);
  }

  // Guest-physical address of the PTE for GVA 0x400000.
  const std::uint64_t pt_gpa = gpt_->LeafEntryGpa(kGuestPtRoot, 0x400000);
  ASSERT_NE(pt_gpa, 0u);

  hw::isa::Assembler as(0x1000);
  as.MovImm(0, 0x11);
  as.StoreAbs(0, 0x400000);  // Fill shadow for 0x400000 -> 0x200000.
  // Rewrite the PTE to point at GPA 0x280000, then INVLPG.
  as.MovImm(1, 0x280000 | hw::pte::kPresent | hw::pte::kWritable | hw::pte::kDirty |
                   hw::pte::kAccessed);
  // A 4-byte PTE store: our ISA stores 8 bytes, which also clears the
  // neighbouring entry — harmless here (GVA 0x401000 is unused).
  as.Emit({.opcode = hw::isa::Opcode::kStore, .r1 = 1, .r2 = hw::isa::kNoReg,
           .imm64 = pt_gpa});
  as.Emit({.opcode = hw::isa::Opcode::kInvlpg, .r2 = hw::isa::kNoReg,
           .imm64 = 0x400000});
  as.MovImm(0, 0x22);
  as.StoreAbs(0, 0x400000);  // Must land at the NEW translation.
  as.Hlt();
  InstallProgram(as);
  vcpu_->gstate().rip = 0x1000;
  vcpu_->gstate().cr3 = kGuestPtRoot;
  vcpu_->gstate().paging = true;

  InstallHltPortal();
  StartAndRun();

  EXPECT_EQ(hv_.EventCount("INVLPG"), 1u);
  EXPECT_EQ(machine_.mem().Read64(GuestHpa(0x200000)), 0x11u);
  EXPECT_EQ(machine_.mem().Read64(GuestHpa(0x280000)), 0x22u);
}

TEST_F(VtlbTest, UnmappedGpaUnderShadowIsMmio) {
  GuestMap(kGuestPtRoot, 0x1000, 0x1000, hw::pte::kWritable);
  // Guest maps a device at GPA 0xfee00000 (outside delegated RAM).
  GuestMap(kGuestPtRoot, 0x800000, 0xfee00000, hw::pte::kWritable);

  hw::isa::Assembler as(0x1000);
  as.MovImm(0, 5);
  as.StoreAbs(0, 0x800000);
  as.Hlt();
  InstallProgram(as);
  vcpu_->gstate().rip = 0x1000;
  vcpu_->gstate().cr3 = kGuestPtRoot;
  vcpu_->gstate().paging = true;

  std::uint64_t mmio_gpa = 0;
  InstallPortal(Event::kMmio, mtd::kRip | mtd::kQual, [&](std::uint64_t) {
    Utcb& u = handlers_[static_cast<int>(Event::kMmio)]->utcb();
    mmio_gpa = u.arch.qual_gpa;
    u.arch.rip += u.arch.insn_len;
  });
  InstallHltPortal();
  StartAndRun();

  EXPECT_EQ(mmio_gpa, 0xfee00000u);
  EXPECT_EQ(hv_.EventCount("Memory-Mapped I/O"), 1u);
}

TEST_F(VtlbTest, DirtyBitTrackedLazily) {
  GuestMap(kGuestPtRoot, 0x1000, 0x1000, hw::pte::kWritable);
  GuestMap(kGuestPtRoot, 0x400000, 0x200000, hw::pte::kWritable);

  hw::isa::Assembler as(0x1000);
  as.LoadAbs(0, 0x400000);   // Read first: shadow entry is read-only.
  as.MovImm(0, 3);
  as.StoreAbs(0, 0x400000);  // Write: second vTLB fill sets D.
  as.Hlt();
  InstallProgram(as);
  vcpu_->gstate().rip = 0x1000;
  vcpu_->gstate().cr3 = kGuestPtRoot;
  vcpu_->gstate().paging = true;

  InstallHltPortal();
  StartAndRun();

  // Guest PTE dirty bit was set by the vTLB on the write path.
  const std::uint64_t pte_gpa = gpt_->LeafEntryGpa(kGuestPtRoot, 0x400000);
  ASSERT_NE(pte_gpa, 0u);
  const std::uint32_t leaf = machine_.mem().Read32(GuestHpa(pte_gpa));
  EXPECT_TRUE(leaf & hw::pte::kDirty);
  EXPECT_TRUE(leaf & hw::pte::kAccessed);
  // Read fill + write fill for the same page, plus the code page.
  EXPECT_GE(hv_.EventCount("vTLB Fill"), 3u);
}

}  // namespace
}  // namespace nova::hv
