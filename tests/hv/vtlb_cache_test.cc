// The vTLB optimization ladder (§8.4): shadow-context caching across
// MOV CR3, cross-context INVLPG invalidation, LRU eviction with frame
// accounting, naive-mode parity with the legacy flush-on-switch vTLB, and
// tagged-TLB (VPID) reuse on hardware that supports it.
#include <gtest/gtest.h>

#include "src/guest/guest_pt.h"
#include "src/hw/isa.h"
#include "tests/hv/test_util.h"

namespace nova::hv {
namespace {

// Same VM scaffold as VtlbTest, parameterized on the CPU model so the
// VPID tests can run on a tagged-TLB part (Core i7) while the rest use the
// paper's shadow-paging target (Core Duo, no tags).
class VtlbLadderTest : public HvTest {
 protected:
  static constexpr CapSel kVmPd = 100;
  static constexpr CapSel kVcpuSel = 101;
  static constexpr CapSel kScSel = 102;
  static constexpr CapSel kEvtBase = 200;
  static constexpr CapSel kHandlerBase = 300;
  static constexpr CapSel kPortalBase = 320;

  // Guest layout: two address spaces plus a shared frame pool for their
  // page tables (GPA == GVA identity for code).
  static constexpr std::uint64_t kRootA = 0x100000;  // First guest CR3.
  static constexpr std::uint64_t kRootB = 0x108000;  // Second guest CR3.
  static constexpr std::uint64_t kGuestPtPool = 0x110000;

  explicit VtlbLadderTest(const hw::CpuModel* cpu)
      : HvTest(hw::MachineConfig{.cpus = {cpu}, .ram_size = 512ull << 20}) {
    EXPECT_EQ(hv_.CreatePd(root_, kVmPd, "vm", true, &vm_), Status::kSuccess);
    guest_base_page_ = hv_.kernel_reserve() >> hw::kPageShift;
    EXPECT_EQ(hv_.Delegate(root_, kVmPd,
                           Crd{CrdKind::kMem, guest_base_page_, 13, perm::kRwx}, 0),
              Status::kSuccess);
    EXPECT_EQ(hv_.CreateVcpu(root_, kVcpuSel, kVmPd, 0, kEvtBase, &vcpu_),
              Status::kSuccess);
    hw::VmControls& ctl = vcpu_->ctl();
    ctl.mode = hw::TranslationMode::kShadow;
    ctl.nested_root = 0;  // The kernel allocates the shadow table lazily.
    ctl.intercept_cr3 = true;
    ctl.intercept_invlpg = true;
    gpt_ = std::make_unique<guest::GuestPageTableBuilder>(
        &machine_.mem(), [this](std::uint64_t gpa) { return GuestHpa(gpa); },
        kGuestPtPool);
  }

  hw::PhysAddr GuestHpa(std::uint64_t gpa) {
    return (guest_base_page_ << hw::kPageShift) + gpa;
  }

  void GuestMap(std::uint64_t root_gpa, std::uint64_t gva, std::uint64_t gpa,
                std::uint64_t flags) {
    ASSERT_EQ(gpt_->Map(root_gpa, gva, gpa, hw::kPageSize, flags), Status::kSuccess);
  }

  // Both address spaces share the code page; their data mappings differ.
  void BuildTwoAddressSpaces() {
    GuestMap(kRootA, 0x1000, 0x1000, hw::pte::kWritable);
    GuestMap(kRootA, 0x400000, 0x200000, hw::pte::kWritable);
    GuestMap(kRootB, 0x1000, 0x1000, hw::pte::kWritable);
    GuestMap(kRootB, 0x400000, 0x300000, hw::pte::kWritable);
  }

  // The ladder workload: bounce between the two address spaces, storing a
  // distinct value per visit. Revisits exercise the context cache.
  void InstallSwitchProgram() {
    hw::isa::Assembler as(0x1000);
    as.MovImm(0, 0xaaa);
    as.StoreAbs(0, 0x400000);  // A: lands in GPA 0x200000.
    as.MovCr3Imm(kRootB);      // First sight of B.
    as.MovImm(0, 0xbbb);
    as.StoreAbs(0, 0x400000);  // B: lands in GPA 0x300000.
    as.MovCr3Imm(kRootA);      // Back to A: cached-context hit.
    as.MovImm(0, 0xccc);
    as.StoreAbs(0, 0x400000);
    as.MovCr3Imm(kRootB);      // Back to B: cached-context hit.
    as.MovImm(0, 0xddd);
    as.StoreAbs(0, 0x400000);
    as.Hlt();
    InstallProgram(as);
    vcpu_->gstate().rip = 0x1000;
    vcpu_->gstate().cr3 = kRootA;
    vcpu_->gstate().paging = true;
  }

  void InstallProgram(const hw::isa::Assembler& as) {
    (void)machine_.mem().Write(GuestHpa(as.base()), as.bytes().data(), as.bytes().size());
  }

  void InstallHltPortal() {
    const auto idx = static_cast<CapSel>(Event::kHlt);
    Ec* handler = nullptr;
    ASSERT_EQ(hv_.CreateEcLocal(
                  root_, kHandlerBase + idx, kSelOwnPd, 0,
                  [this, idx](std::uint64_t) {
                    handlers_[idx]->utcb().arch.halted = true;
                  },
                  &handler),
              Status::kSuccess);
    handlers_[idx] = handler;
    ASSERT_EQ(hv_.CreatePt(root_, kPortalBase + idx, kHandlerBase + idx, mtd::kSta,
                           static_cast<std::uint64_t>(Event::kHlt)),
              Status::kSuccess);
    ASSERT_EQ(hv_.Delegate(root_, kVmPd, Crd::Obj(kPortalBase + idx, 0, perm::kCall),
                           kEvtBase + idx),
              Status::kSuccess);
  }

  void StartAndRun(int steps = 40) {
    ASSERT_EQ(hv_.CreateSc(root_, kScSel, kVcpuSel, 1, 30'000'000), Status::kSuccess);
    for (int i = 0; i < steps && hv_.StepOnce(); ++i) {
    }
  }

  Pd* vm_ = nullptr;
  Ec* vcpu_ = nullptr;
  std::uint64_t guest_base_page_ = 0;
  std::unique_ptr<guest::GuestPageTableBuilder> gpt_;
  Ec* handlers_[kNumEvents] = {};
};

// Yonah: no nested paging, no tagged TLB — the paper's vTLB target.
class VtlbCacheTest : public VtlbLadderTest {
 protected:
  VtlbCacheTest() : VtlbLadderTest(&hw::CoreDuoT2500()) {}
};

// Core i7: tagged TLB (VPID), run in shadow mode for the ladder's top rung.
class VtlbVpidTest : public VtlbLadderTest {
 protected:
  VtlbVpidTest() : VtlbLadderTest(&hw::CoreI7_920()) {}
};

TEST_F(VtlbCacheTest, CachedSwitchReusesShadowTrees) {
  hv_.set_vtlb_policy(VtlbPolicy{.cache_contexts = true});
  BuildTwoAddressSpaces();
  InstallSwitchProgram();
  InstallHltPortal();
  StartAndRun();

  // The last store per space wins.
  EXPECT_EQ(machine_.mem().Read64(GuestHpa(0x200000)), 0xcccu);
  EXPECT_EQ(machine_.mem().Read64(GuestHpa(0x300000)), 0xdddu);

  // Exactly one fill per (context, page): code+data for A, code+data for
  // B. Switching back to a cached context performs ZERO additional fills —
  // the already-shadowed pages are reused.
  EXPECT_EQ(hv_.EventCount("vTLB Fill"), 4u);
  EXPECT_EQ(hv_.EventCount("CR Read/Write"), 3u);
  EXPECT_EQ(hv_.EventCount("vTLB Context Miss"), 1u);  // First sight of B.
  EXPECT_EQ(hv_.EventCount("vTLB Context Hit"), 2u);   // Both revisits.
  // No shadow tree was torn down.
  EXPECT_EQ(hv_.EventCount("vTLB Flush"), 0u);

  Vtlb& vtlb = hv_.VtlbFor(vcpu_);
  EXPECT_EQ(vtlb.cached_contexts(), 2u);
}

TEST_F(VtlbCacheTest, NaiveModeReproducesLegacyFlushOnSwitch) {
  // Default policy: no caching. This pins the seed's flush-on-every-switch
  // behaviour so the refactor cannot silently change naive-mode counts.
  BuildTwoAddressSpaces();
  InstallSwitchProgram();
  InstallHltPortal();

  const std::uint64_t frames_before = hv_.FramesInUse();
  StartAndRun();

  EXPECT_EQ(machine_.mem().Read64(GuestHpa(0x200000)), 0xcccu);
  EXPECT_EQ(machine_.mem().Read64(GuestHpa(0x300000)), 0xdddu);

  // Every MOV CR3 flushes the single shadow tree, so each of the four
  // visits re-fills its code and data page: 8 fills, 3 flushes.
  EXPECT_EQ(hv_.EventCount("vTLB Fill"), 8u);
  EXPECT_EQ(hv_.EventCount("vTLB Flush"), 3u);
  EXPECT_EQ(hv_.EventCount("CR Read/Write"), 3u);
  // The context cache is off: no hit/miss traffic.
  EXPECT_EQ(hv_.EventCount("vTLB Context Hit"), 0u);
  EXPECT_EQ(hv_.EventCount("vTLB Context Miss"), 0u);

  // Flush-on-switch returns every freed table to the kernel pool: the
  // frames still out are exactly the ones the live shadow tree holds.
  Vtlb& vtlb = hv_.VtlbFor(vcpu_);
  EXPECT_EQ(hv_.FramesInUse(), frames_before + vtlb.frames_held());
}

TEST_F(VtlbCacheTest, InvlpgInvalidatesEveryCachedContext) {
  hv_.set_vtlb_policy(VtlbPolicy{.cache_contexts = true});
  GuestMap(kRootA, 0x1000, 0x1000, hw::pte::kWritable);
  GuestMap(kRootA, 0x400000, 0x200000, hw::pte::kWritable);
  GuestMap(kRootB, 0x1000, 0x1000, hw::pte::kWritable);
  GuestMap(kRootB, 0x400000, 0x210000, hw::pte::kWritable);
  // Map the guest page-table frames identity into B so the guest can edit
  // A's PTE while A's context is dormant.
  GuestMap(kRootB, kRootA, kRootA, hw::pte::kWritable);
  GuestMap(kRootB, kRootB, kRootB, hw::pte::kWritable);
  for (std::uint64_t f = kGuestPtPool; f < kGuestPtPool + 0x8000; f += 0x1000) {
    GuestMap(kRootB, f, f, hw::pte::kWritable);
  }

  const std::uint64_t pte_gpa = gpt_->LeafEntryGpa(kRootA, 0x400000);
  ASSERT_NE(pte_gpa, 0u);

  hw::isa::Assembler as(0x1000);
  as.MovImm(0, 0x11);
  as.StoreAbs(0, 0x400000);  // Shadow A: 0x400000 -> 0x200000.
  as.MovCr3Imm(kRootB);
  as.MovImm(0, 0x22);
  as.StoreAbs(0, 0x400000);  // Shadow B: 0x400000 -> 0x210000.
  // While A is dormant, retarget A's PTE to GPA 0x280000 and INVLPG. The
  // 8-byte store also clears the neighbouring entry (GVA 0x401000, unused).
  as.MovImm(1, 0x280000 | hw::pte::kPresent | hw::pte::kWritable | hw::pte::kDirty |
                   hw::pte::kAccessed);
  as.Emit({.opcode = hw::isa::Opcode::kStore, .r1 = 1, .r2 = hw::isa::kNoReg,
           .imm64 = pte_gpa});
  as.Emit({.opcode = hw::isa::Opcode::kInvlpg, .r2 = hw::isa::kNoReg,
           .imm64 = 0x400000});
  as.MovImm(0, 0x33);
  as.StoreAbs(0, 0x400000);  // B refills from its (unchanged) PTE.
  as.MovCr3Imm(kRootA);      // Context hit: A's shadow tree is reused...
  as.MovImm(0, 0x44);
  as.StoreAbs(0, 0x400000);  // ...but 0x400000 must refill from the new PTE.
  as.Hlt();
  InstallProgram(as);
  vcpu_->gstate().rip = 0x1000;
  vcpu_->gstate().cr3 = kRootA;
  vcpu_->gstate().paging = true;

  InstallHltPortal();
  StartAndRun();

  EXPECT_EQ(hv_.EventCount("INVLPG"), 1u);
  EXPECT_EQ(hv_.EventCount("vTLB Context Hit"), 1u);
  // Had the INVLPG not reached the dormant context, 0x44 would have landed
  // in the stale translation's frame (0x200000).
  EXPECT_EQ(machine_.mem().Read64(GuestHpa(0x200000)), 0x11u);
  EXPECT_EQ(machine_.mem().Read64(GuestHpa(0x210000)), 0x33u);
  EXPECT_EQ(machine_.mem().Read64(GuestHpa(0x280000)), 0x44u);
}

TEST_F(VtlbCacheTest, EvictionReturnsEveryFrameToTheKernelPool) {
  // A budget smaller than one context's tree: every switch away from a
  // context evicts it.
  hv_.set_vtlb_policy(
      VtlbPolicy{.cache_contexts = true, .max_cached_frames = 2});
  BuildTwoAddressSpaces();
  InstallSwitchProgram();
  InstallHltPortal();

  const std::uint64_t frames_before = hv_.FramesInUse();
  StartAndRun();

  EXPECT_EQ(machine_.mem().Read64(GuestHpa(0x200000)), 0xcccu);
  EXPECT_EQ(machine_.mem().Read64(GuestHpa(0x300000)), 0xdddu);

  // Each of the three switches evicted the now-dormant context.
  EXPECT_EQ(hv_.EventCount("vTLB Context Evict"), 3u);
  // Every revisit found its context evicted: misses, never hits.
  EXPECT_EQ(hv_.EventCount("vTLB Context Hit"), 0u);
  EXPECT_EQ(hv_.EventCount("vTLB Context Miss"), 3u);

  // No leaks: allocator accounting matches the subsystem's own count, and
  // dropping the remaining context returns the pool to its pre-run level.
  Vtlb& vtlb = hv_.VtlbFor(vcpu_);
  EXPECT_EQ(vtlb.cached_contexts(), 1u);
  EXPECT_EQ(hv_.FramesInUse(), frames_before + vtlb.frames_held());
  vtlb.DropAllContexts();
  EXPECT_EQ(vtlb.frames_held(), 0u);
  EXPECT_EQ(vtlb.cached_contexts(), 0u);
  EXPECT_EQ(hv_.FramesInUse(), frames_before);
}

TEST_F(VtlbVpidTest, VpidTurnsContextSwitchIntoTagSwitch) {
  hv_.set_vtlb_policy(VtlbPolicy{.cache_contexts = true, .use_vpid = true});
  BuildTwoAddressSpaces();
  InstallSwitchProgram();
  InstallHltPortal();

  const std::uint64_t hw_flushes_before = machine_.cpu(0).tlb().flushes().value();
  StartAndRun();

  EXPECT_EQ(machine_.mem().Read64(GuestHpa(0x200000)), 0xcccu);
  EXPECT_EQ(machine_.mem().Read64(GuestHpa(0x300000)), 0xdddu);
  EXPECT_EQ(hv_.EventCount("vTLB Fill"), 4u);
  EXPECT_EQ(hv_.EventCount("vTLB Context Hit"), 2u);

  // The whole point of the top rung: no hardware-TLB flush was charged on
  // any of the three address-space switches — each context runs under its
  // own VPID.
  EXPECT_EQ(machine_.cpu(0).tlb().flushes().value(), hw_flushes_before);
  // The vCPU runs under a per-context tag, not the VM's identity tag.
  EXPECT_NE(vcpu_->ctl().tag, vcpu_->ctl().base_tag);
}

// Instantiable variant of the cached-mode scaffold: quota-pressure tests
// run the same ladder workload twice (unlimited, pinched) and compare.
class VtlbPressureScenario : public VtlbCacheTest {
 public:
  VtlbPressureScenario() = default;
  void TestBody() override {}

  struct Result {
    std::uint64_t a_val = 0;
    std::uint64_t b_val = 0;
    std::uint64_t fills = 0;
    std::uint64_t pressure_evicts = 0;
    std::uint64_t vm_errors = 0;
    std::uint64_t used_end = 0;
  };

  // `limit_frames` == 0 runs with the VM's account pass-through
  // (unlimited); otherwise the VM is pinched to that many frames before
  // the guest starts.
  Result Run(std::uint64_t limit_frames) {
    hv_.set_vtlb_policy(VtlbPolicy{.cache_contexts = true});
    BuildTwoAddressSpaces();
    InstallSwitchProgram();
    InstallHltPortal();
    if (limit_frames != 0) {
      vm_->kmem().SetLimit(limit_frames);
    }
    StartAndRun(/*steps=*/80);
    Result r;
    r.a_val = machine_.mem().Read64(GuestHpa(0x200000));
    r.b_val = machine_.mem().Read64(GuestHpa(0x300000));
    r.fills = hv_.EventCount("vTLB Fill");
    r.pressure_evicts = hv_.EventCount("vTLB Pressure Evict");
    r.vm_errors = hv_.EventCount("VM Error");
    r.used_end = vm_->kmem().used();
    return r;
  }
};

TEST(VtlbPressure, QuotaPinchEvictsOwnContextsAndStillCompletes) {
  // Reference run: unlimited quota, context cache on. Both dormant
  // contexts stay resident; used_end is the VM's full appetite.
  VtlbPressureScenario unlimited;
  const auto clean = unlimited.Run(0);
  ASSERT_EQ(clean.a_val, 0xcccu);
  ASSERT_EQ(clean.b_val, 0xdddu);
  ASSERT_EQ(clean.pressure_evicts, 0u);
  ASSERT_EQ(clean.vm_errors, 0u);

  // Pinched run: one frame short of the full appetite, so both shadow
  // trees can never coexist. The vTLB must degrade gracefully — evict its
  // own LRU dormant context, re-fill on revisit — and the guest's
  // architectural results must be identical to the unlimited run.
  VtlbPressureScenario pinched;
  const auto r = pinched.Run(clean.used_end - 1);
  EXPECT_EQ(r.a_val, 0xcccu);
  EXPECT_EQ(r.b_val, 0xdddu);
  EXPECT_EQ(r.vm_errors, 0u);           // Forward progress, never parked.
  EXPECT_GE(r.pressure_evicts, 1u);     // Pressure actually hit.
  EXPECT_GT(r.fills, clean.fills);      // Paid for in extra re-fills...
  EXPECT_LT(r.used_end, clean.used_end);  // ...not in extra memory.
}

TEST_F(VtlbVpidTest, UntaggedPolicyStillFlushesHardwareTlb) {
  // Same hardware, VPID layer off: the context cache keeps the shadow
  // trees but each switch must flush the shared identity tag.
  hv_.set_vtlb_policy(VtlbPolicy{.cache_contexts = true});
  BuildTwoAddressSpaces();
  InstallSwitchProgram();
  InstallHltPortal();

  const std::uint64_t hw_flushes_before = machine_.cpu(0).tlb().flushes().value();
  StartAndRun();

  EXPECT_EQ(hv_.EventCount("vTLB Fill"), 4u);  // Shadow trees still reused.
  EXPECT_GE(machine_.cpu(0).tlb().flushes().value(), hw_flushes_before + 3);
  EXPECT_EQ(vcpu_->ctl().tag, vcpu_->ctl().base_tag);
}

}  // namespace
}  // namespace nova::hv
