#include "src/hv/mdb.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/hv/objects.h"

namespace nova::hv {
namespace {

// The Mdb only uses Pd pointers as identities; fabricate distinct ones.
struct FakePds {
  Pd* A() { return reinterpret_cast<Pd*>(0x1000); }
  Pd* B() { return reinterpret_cast<Pd*>(0x2000); }
  Pd* C() { return reinterpret_cast<Pd*>(0x3000); }
};

TEST(Mdb, FindLocatesCoveringNode) {
  Mdb mdb;
  FakePds pds;
  mdb.CreateRoot(pds.A(), CrdKind::kMem, 100, 50, perm::kRw);
  EXPECT_NE(mdb.Find(pds.A(), CrdKind::kMem, 110, 10), nullptr);
  EXPECT_EQ(mdb.Find(pds.A(), CrdKind::kMem, 140, 20), nullptr);  // Overruns.
  EXPECT_EQ(mdb.Find(pds.A(), CrdKind::kIo, 110, 10), nullptr);   // Wrong kind.
  EXPECT_EQ(mdb.Find(pds.B(), CrdKind::kMem, 110, 10), nullptr);  // Wrong pd.
}

TEST(Mdb, RevokeRemovesChildrenRecursively) {
  Mdb mdb;
  FakePds pds;
  MdbNode* root = mdb.CreateRoot(pds.A(), CrdKind::kMem, 0, 100, perm::kRw);
  MdbNode* child = mdb.Delegate(root, pds.B(), 10, 20, perm::kRead, 10);
  (void)mdb.Delegate(child, pds.C(), 30, 20, perm::kRead, 12);

  std::vector<const Pd*> unmapped;
  (void)mdb.Revoke(pds.A(), Crd::Mem(0, 7, perm::kRw), /*include_self=*/false,
             [&](const MdbNode& n) { unmapped.push_back(n.pd); });
  // Depth-first: C before B; A itself survives.
  ASSERT_EQ(unmapped.size(), 2u);
  EXPECT_EQ(unmapped[0], pds.C());
  EXPECT_EQ(unmapped[1], pds.B());
  EXPECT_NE(mdb.Find(pds.A(), CrdKind::kMem, 0, 100), nullptr);
  EXPECT_EQ(mdb.Find(pds.B(), CrdKind::kMem, 10, 20), nullptr);
}

TEST(Mdb, RevokeIncludeSelfRemovesOwnHolding) {
  Mdb mdb;
  FakePds pds;
  MdbNode* root = mdb.CreateRoot(pds.A(), CrdKind::kMem, 0, 100, perm::kRw);
  (void)mdb.Delegate(root, pds.B(), 0, 100, perm::kRead, 0);

  int count = 0;
  (void)mdb.Revoke(pds.A(), Crd::Mem(0, 7, perm::kRw), /*include_self=*/true,
             [&](const MdbNode&) { ++count; });
  EXPECT_EQ(count, 2);
  EXPECT_EQ(mdb.node_count(), 0u);
}

TEST(Mdb, RevokeOnlyTouchesOverlap) {
  Mdb mdb;
  FakePds pds;
  MdbNode* root = mdb.CreateRoot(pds.A(), CrdKind::kMem, 0, 1024, perm::kRw);
  (void)mdb.Delegate(root, pds.B(), 0, 16, perm::kRw, 0);
  (void)mdb.Delegate(root, pds.C(), 512, 16, perm::kRw, 512);

  std::vector<const Pd*> unmapped;
  // Revoke only B's range from A's perspective: both children derive from
  // the same root node, so revoking the overlapping parent region drops
  // everything derived from it.
  (void)mdb.Revoke(pds.B(), Crd::Mem(0, 4, perm::kRw), /*include_self=*/true,
             [&](const MdbNode& n) { unmapped.push_back(n.pd); });
  EXPECT_EQ(unmapped, (std::vector<const Pd*>{pds.B()}));
  EXPECT_NE(mdb.Find(pds.C(), CrdKind::kMem, 512, 16), nullptr);
}

TEST(Mdb, DropDomainRemovesAllHoldings) {
  Mdb mdb;
  FakePds pds;
  MdbNode* m = mdb.CreateRoot(pds.A(), CrdKind::kMem, 0, 100, perm::kRw);
  MdbNode* io = mdb.CreateRoot(pds.A(), CrdKind::kIo, 0x3f8, 8, perm::kAll);
  (void)mdb.Delegate(m, pds.B(), 0, 10, perm::kRead, 0);
  (void)mdb.Delegate(io, pds.B(), 0x3f8, 8, perm::kAll, 0x3f8);

  int b_unmaps = 0;
  mdb.DropDomain(pds.B(), [&](const MdbNode& n) {
    EXPECT_EQ(n.pd, pds.B());
    ++b_unmaps;
  });
  EXPECT_EQ(b_unmaps, 2);
  EXPECT_EQ(mdb.node_count(), 2u);  // A's roots remain.
}

TEST(Mdb, DropDomainCascadesToDerived) {
  Mdb mdb;
  FakePds pds;
  MdbNode* root = mdb.CreateRoot(pds.A(), CrdKind::kMem, 0, 100, perm::kRw);
  MdbNode* b = mdb.Delegate(root, pds.B(), 0, 50, perm::kRw, 0);
  (void)mdb.Delegate(b, pds.C(), 0, 25, perm::kRead, 0);

  std::vector<const Pd*> order;
  mdb.DropDomain(pds.B(), [&](const MdbNode& n) { order.push_back(n.pd); });
  // C's holding derives from B and must fall with it.
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], pds.C());
  EXPECT_EQ(order[1], pds.B());
}

}  // namespace
}  // namespace nova::hv
