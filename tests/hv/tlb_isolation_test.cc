// TLB-tag semantics across VM switches: tagged parts keep guest entries
// alive across world switches; untagged parts flush — the mechanism behind
// Figure 5's VPID comparison. Also: revocation shoots down translations.
#include <gtest/gtest.h>

#include "src/hw/isa.h"
#include "tests/hv/test_util.h"

namespace nova::hv {
namespace {

class TlbIsolationTest : public HvTest {
 protected:
  explicit TlbIsolationTest(const hw::CpuModel* model = &hw::CoreI7_920())
      : HvTest(hw::MachineConfig{.cpus = {model}, .ram_size = 512ull << 20}) {}

  // A VM whose guest touches `pages` distinct pages then halts (and can be
  // re-run).
  struct MiniVm {
    Pd* pd = nullptr;
    Ec* vcpu = nullptr;
    std::uint64_t base_page = 0;
  };

  MiniVm MakeVm(CapSel pd_sel, CapSel vcpu_sel, CapSel sc_sel, int pages) {
    MiniVm vm;
    EXPECT_EQ(hv_.CreatePd(root_, pd_sel, "vm", true, &vm.pd), Status::kSuccess);
    vm.base_page = next_grant_page_;
    EXPECT_EQ(hv_.Delegate(root_, pd_sel,
                           Crd{CrdKind::kMem, vm.base_page, 12, perm::kRwx}, 0),
              Status::kSuccess);
    next_grant_page_ += 1 << 12;
    EXPECT_EQ(hv_.CreateVcpu(root_, vcpu_sel, pd_sel, 0, 0x300, &vm.vcpu),
              Status::kSuccess);
    vm.vcpu->ctl().intercept_hlt = false;  // Halt = idle, no VMM needed.

    hw::isa::Assembler as(0x1000);
    as.MovImm(0, pages);
    as.MovImm(1, 0x100000);
    const std::uint64_t top = as.Load(2, 1, 0);
    as.AddImm(1, hw::kPageSize);
    as.Loop(0, top);
    as.Hlt();
    (void)machine_.mem().Write((vm.base_page << hw::kPageShift) + 0x1000,
                         as.bytes().data(), as.bytes().size());
    vm.vcpu->gstate().rip = 0x1000;
    EXPECT_EQ(hv_.CreateSc(root_, sc_sel, vcpu_sel, 1, 30'000'000),
              Status::kSuccess);
    return vm;
  }

  void RunUntilHalted(MiniVm& vm) {
    hv_.RunUntilCondition([&] { return vm.vcpu->gstate().halted; },
                          machine_.events().now() + sim::Seconds(1));
  }

  std::uint64_t next_grant_page_ = (64ull << 20) >> hw::kPageShift;
};

TEST_F(TlbIsolationTest, VpidKeepsGuestEntriesAcrossWorldSwitches) {
  MiniVm vm = MakeVm(100, 101, 102, 32);
  RunUntilHalted(vm);
  // 32 data pages + the code page live in the TLB under the VM's tag.
  EXPECT_GE(machine_.cpu(0).tlb().EntryCount(vm.pd->vm_tag()), 32u);
  // World switches happened (entry to run, exit on halt) and the entries
  // survived: that is VPID.
  EXPECT_TRUE(machine_.cpu(0).model().has_guest_tlb_tags);
}

TEST_F(TlbIsolationTest, TwoVmsUseDistinctTags) {
  MiniVm a = MakeVm(100, 101, 102, 8);
  MiniVm b = MakeVm(110, 111, 112, 8);
  RunUntilHalted(a);
  RunUntilHalted(b);
  EXPECT_NE(a.pd->vm_tag(), b.pd->vm_tag());
  EXPECT_GE(machine_.cpu(0).tlb().EntryCount(a.pd->vm_tag()), 8u);
  EXPECT_GE(machine_.cpu(0).tlb().EntryCount(b.pd->vm_tag()), 8u);
}

TEST_F(TlbIsolationTest, RevocationShootsDownTlbEntries) {
  MiniVm vm = MakeVm(100, 101, 102, 32);
  RunUntilHalted(vm);
  ASSERT_GE(machine_.cpu(0).tlb().EntryCount(vm.pd->vm_tag()), 32u);
  // Root revokes part of the VM's memory: the stale translations must go.
  ASSERT_EQ(hv_.Revoke(root_, Crd{CrdKind::kMem, vm.base_page, 12, perm::kRw},
                       /*include_self=*/false),
            Status::kSuccess);
  EXPECT_EQ(machine_.cpu(0).tlb().EntryCount(vm.pd->vm_tag()), 0u);
  // The nested table no longer maps the range.
  EXPECT_EQ(vm.pd->mem_space()
                .table()
                .Walk(0x100000, hw::Access{.user = true}, false)
                .status,
            Status::kMemoryFault);
}

class NoVpidTest : public TlbIsolationTest {
 protected:
  NoVpidTest() : TlbIsolationTest(&hw::CoreI7_920_NoVpid()) {}
};

TEST_F(NoVpidTest, WorldSwitchesFlushUntaggedTlb) {
  MiniVm vm = MakeVm(100, 101, 102, 32);
  RunUntilHalted(vm);
  // Without VPID the exit path flushed everything: no guest entries remain
  // once the CPU is back in host mode.
  EXPECT_EQ(machine_.cpu(0).tlb().EntryCount(vm.pd->vm_tag()), 0u);
  EXPECT_EQ(machine_.cpu(0).tlb().size(), 0u);
}

}  // namespace
}  // namespace nova::hv
