// Portal IPC: call/reply, donation accounting, typed-item delegation.
#include <gtest/gtest.h>

#include "tests/hv/test_util.h"

namespace nova::hv {
namespace {

class IpcTest : public HvTest {
 protected:
  IpcTest() {
    EXPECT_EQ(hv_.CreatePd(root_, kServerPdSel, "server", false, &server_pd_),
              Status::kSuccess);
    EXPECT_EQ(hv_.CreatePd(root_, kClientPdSel, "client", false, &client_pd_),
              Status::kSuccess);
  }

  static constexpr CapSel kServerPdSel = 100;
  static constexpr CapSel kClientPdSel = 101;
  static constexpr CapSel kHandlerEcSel = 110;
  static constexpr CapSel kPortalSel = 111;
  static constexpr CapSel kClientEcSel = 112;

  Pd* server_pd_ = nullptr;
  Pd* client_pd_ = nullptr;
};

TEST_F(IpcTest, CallTransfersWordsBothWays) {
  Ec* handler = nullptr;
  ASSERT_EQ(hv_.CreateEcLocal(root_, kHandlerEcSel, kServerPdSel, 0,
                              [&](std::uint64_t id) {
                                EXPECT_EQ(id, 42u);
                                // Echo: reply = request + 1 per word.
                                Utcb& u = handler->utcb();
                                for (std::uint32_t i = 0; i < u.untyped; ++i) {
                                  u.words[i] += 1;
                                }
                              },
                              &handler),
            Status::kSuccess);
  ASSERT_EQ(hv_.CreatePt(root_, kPortalSel, kHandlerEcSel, 0, 42), Status::kSuccess);

  Ec* client = nullptr;
  ASSERT_EQ(hv_.CreateEcGlobal(root_, kClientEcSel, kClientPdSel, 0, [] {}, &client),
            Status::kSuccess);
  // Hand the portal to the client domain.
  ASSERT_EQ(hv_.Delegate(root_, kClientPdSel,
                         Crd::Obj(kPortalSel, 0, perm::kCall | perm::kDelegate), 50),
            Status::kSuccess);

  client->utcb().untyped = 3;
  client->utcb().words = {7, 8, 9};
  ASSERT_EQ(hv_.Call(client, 50), Status::kSuccess);
  EXPECT_EQ(client->utcb().untyped, 3u);
  EXPECT_EQ(client->utcb().words[0], 8u);
  EXPECT_EQ(client->utcb().words[1], 9u);
  EXPECT_EQ(client->utcb().words[2], 10u);
}

TEST_F(IpcTest, CallWithoutCapabilityFails) {
  Ec* client = nullptr;
  ASSERT_EQ(hv_.CreateEcGlobal(root_, kClientEcSel, kClientPdSel, 0, [] {}, &client),
            Status::kSuccess);
  EXPECT_EQ(hv_.Call(client, 50), Status::kBadCapability);
}

TEST_F(IpcTest, CallWithoutCallPermissionFails) {
  Ec* handler = nullptr;
  ASSERT_EQ(hv_.CreateEcLocal(root_, kHandlerEcSel, kServerPdSel, 0,
                              [](std::uint64_t) {}, &handler),
            Status::kSuccess);
  ASSERT_EQ(hv_.CreatePt(root_, kPortalSel, kHandlerEcSel, 0, 0), Status::kSuccess);
  // Delegate the portal but strip the call permission.
  ASSERT_EQ(hv_.Delegate(root_, kClientPdSel, Crd::Obj(kPortalSel, 0, perm::kDelegate),
                         50),
            Status::kSuccess);
  Ec* client = nullptr;
  ASSERT_EQ(hv_.CreateEcGlobal(root_, kClientEcSel, kClientPdSel, 0, [] {}, &client),
            Status::kSuccess);
  EXPECT_EQ(hv_.Call(client, 50), Status::kBadCapability);
}

TEST_F(IpcTest, DonationChargesCallerCpu) {
  Ec* handler = nullptr;
  ASSERT_EQ(hv_.CreateEcLocal(root_, kHandlerEcSel, kServerPdSel, 0,
                              [&](std::uint64_t) {
                                machine_.cpu(0).Charge(5000);  // Handler work.
                              },
                              &handler),
            Status::kSuccess);
  ASSERT_EQ(hv_.CreatePt(root_, kPortalSel, kHandlerEcSel, 0, 0), Status::kSuccess);
  ASSERT_EQ(hv_.Delegate(root_, kClientPdSel, Crd::Obj(kPortalSel, 0, perm::kAll), 50),
            Status::kSuccess);
  Ec* client = nullptr;
  ASSERT_EQ(hv_.CreateEcGlobal(root_, kClientEcSel, kClientPdSel, 0, [] {}, &client),
            Status::kSuccess);

  const sim::Cycles before = machine_.cpu(0).cycles();
  ASSERT_EQ(hv_.Call(client, 50), Status::kSuccess);
  const sim::Cycles total = machine_.cpu(0).cycles() - before;
  // The handler's 5000 cycles are accounted to the caller's CPU time, plus
  // the kernel IPC path.
  EXPECT_GT(total, 5000u);
  EXPECT_LT(total, 7000u);
}

TEST_F(IpcTest, CrossAddressSpaceCostsMore) {
  // Same-PD handler.
  Ec* same_handler = nullptr;
  ASSERT_EQ(hv_.CreateEcLocal(root_, kHandlerEcSel, kClientPdSel, 0,
                              [](std::uint64_t) {}, &same_handler),
            Status::kSuccess);
  ASSERT_EQ(hv_.CreatePt(root_, kPortalSel, kHandlerEcSel, 0, 0), Status::kSuccess);
  ASSERT_EQ(hv_.Delegate(root_, kClientPdSel, Crd::Obj(kPortalSel, 0, perm::kAll), 50),
            Status::kSuccess);
  // Cross-PD handler.
  Ec* cross_handler = nullptr;
  ASSERT_EQ(hv_.CreateEcLocal(root_, 120, kServerPdSel, 0, [](std::uint64_t) {},
                              &cross_handler),
            Status::kSuccess);
  ASSERT_EQ(hv_.CreatePt(root_, 121, 120, 0, 0), Status::kSuccess);
  ASSERT_EQ(hv_.Delegate(root_, kClientPdSel, Crd::Obj(121, 0, perm::kAll), 51),
            Status::kSuccess);

  Ec* client = nullptr;
  ASSERT_EQ(hv_.CreateEcGlobal(root_, kClientEcSel, kClientPdSel, 0, [] {}, &client),
            Status::kSuccess);

  sim::Cycles before = machine_.cpu(0).cycles();
  ASSERT_EQ(hv_.Call(client, 50), Status::kSuccess);
  const sim::Cycles same_as = machine_.cpu(0).cycles() - before;

  before = machine_.cpu(0).cycles();
  ASSERT_EQ(hv_.Call(client, 51), Status::kSuccess);
  const sim::Cycles cross_as = machine_.cpu(0).cycles() - before;

  // Cross-AS IPC pays address-space switch + TLB effects (Figure 8).
  EXPECT_GT(cross_as, same_as + 100);
}

TEST_F(IpcTest, HandlerBusyRejectsReentrantCall) {
  Ec* handler = nullptr;
  Ec* client = nullptr;
  Status inner_status = Status::kSuccess;
  ASSERT_EQ(hv_.CreateEcLocal(root_, kHandlerEcSel, kServerPdSel, 0,
                              [&](std::uint64_t) {
                                // Re-entrant call to the same handler.
                                inner_status = hv_.Call(client, 50);
                              },
                              &handler),
            Status::kSuccess);
  ASSERT_EQ(hv_.CreatePt(root_, kPortalSel, kHandlerEcSel, 0, 0), Status::kSuccess);
  ASSERT_EQ(hv_.Delegate(root_, kClientPdSel, Crd::Obj(kPortalSel, 0, perm::kAll), 50),
            Status::kSuccess);
  ASSERT_EQ(hv_.CreateEcGlobal(root_, kClientEcSel, kClientPdSel, 0, [] {}, &client),
            Status::kSuccess);
  ASSERT_EQ(hv_.Call(client, 50), Status::kSuccess);
  EXPECT_EQ(inner_status, Status::kBusy);
}

TEST_F(IpcTest, TypedItemDelegatesMemoryThroughMessage) {
  // The server declares a receive window; the client's typed item lands
  // there — the §6 delegation-during-communication mechanism.
  const std::uint64_t page = (hv_.kernel_reserve() >> hw::kPageShift) + 64;
  ASSERT_EQ(hv_.Delegate(root_, kClientPdSel, Crd::Mem(page, 2, perm::kRw), page),
            Status::kSuccess);

  Ec* handler = nullptr;
  ASSERT_EQ(hv_.CreateEcLocal(root_, kHandlerEcSel, kServerPdSel, 0,
                              [&](std::uint64_t) {}, &handler),
            Status::kSuccess);
  ASSERT_EQ(hv_.CreatePt(root_, kPortalSel, kHandlerEcSel, 0, 0), Status::kSuccess);
  ASSERT_EQ(hv_.Delegate(root_, kClientPdSel, Crd::Obj(kPortalSel, 0, perm::kAll), 50),
            Status::kSuccess);
  Ec* client = nullptr;
  ASSERT_EQ(hv_.CreateEcGlobal(root_, kClientEcSel, kClientPdSel, 0, [] {}, &client),
            Status::kSuccess);

  handler->utcb().recv_window = Crd::Mem(page, 4, perm::kRw);
  client->utcb().untyped = 0;
  client->utcb().num_typed = 1;
  client->utcb().typed[0] = TypedItem{Crd::Mem(page, 2, perm::kRw), page};
  ASSERT_EQ(hv_.Call(client, 50), Status::kSuccess);

  // The server domain now holds the pages.
  EXPECT_NE(hv_.mdb().Find(server_pd_, CrdKind::kMem, page, 4), nullptr);
}

TEST_F(IpcTest, TypedItemOutsideWindowRejected) {
  const std::uint64_t page = (hv_.kernel_reserve() >> hw::kPageShift) + 64;
  ASSERT_EQ(hv_.Delegate(root_, kClientPdSel, Crd::Mem(page, 2, perm::kRw), page),
            Status::kSuccess);
  Ec* handler = nullptr;
  ASSERT_EQ(hv_.CreateEcLocal(root_, kHandlerEcSel, kServerPdSel, 0,
                              [&](std::uint64_t) {}, &handler),
            Status::kSuccess);
  ASSERT_EQ(hv_.CreatePt(root_, kPortalSel, kHandlerEcSel, 0, 0), Status::kSuccess);
  ASSERT_EQ(hv_.Delegate(root_, kClientPdSel, Crd::Obj(kPortalSel, 0, perm::kAll), 50),
            Status::kSuccess);
  Ec* client = nullptr;
  ASSERT_EQ(hv_.CreateEcGlobal(root_, kClientEcSel, kClientPdSel, 0, [] {}, &client),
            Status::kSuccess);

  handler->utcb().recv_window = Crd::Mem(page + 1000, 2, perm::kRw);
  client->utcb().num_typed = 1;
  client->utcb().typed[0] = TypedItem{Crd::Mem(page, 2, perm::kRw), page};
  EXPECT_EQ(hv_.Call(client, 50), Status::kBadParameter);
  EXPECT_EQ(hv_.mdb().Find(server_pd_, CrdKind::kMem, page, 4), nullptr);
}

}  // namespace
}  // namespace nova::hv
