// Delegation and revocation through the hypercall interface: the
// least-privilege machinery of §4 and §6.
#include <gtest/gtest.h>

#include "tests/hv/test_util.h"

namespace nova::hv {
namespace {

class DelegateTest : public HvTest {
 protected:
  DelegateTest() {
    EXPECT_EQ(hv_.CreatePd(root_, kVmmSel, "vmm", false, &vmm_), Status::kSuccess);
    EXPECT_EQ(hv_.CreatePd(root_, kVmSel, "vm", true, &vm_), Status::kSuccess);
  }

  static constexpr CapSel kVmmSel = 100;
  static constexpr CapSel kVmSel = 101;

  Pd* vmm_ = nullptr;
  Pd* vm_ = nullptr;
};

TEST_F(DelegateTest, RootHoldsAllResourcesAfterBoot) {
  const std::uint64_t first = hv_.kernel_reserve() >> hw::kPageShift;
  EXPECT_NE(hv_.mdb().Find(root_, CrdKind::kMem, first, 16), nullptr);
  EXPECT_NE(hv_.mdb().Find(root_, CrdKind::kIo, 0x3f8, 8), nullptr);
  // Kernel memory is NOT delegatable: below the reserve line.
  EXPECT_EQ(hv_.mdb().Find(root_, CrdKind::kMem, 0, 16), nullptr);
}

TEST_F(DelegateTest, MemoryDelegationInstallsMapping) {
  const std::uint64_t page = (hv_.kernel_reserve() >> hw::kPageShift) + 100;
  ASSERT_EQ(hv_.Delegate(root_, kVmmSel, Crd::Mem(page, 4, perm::kRw), page),
            Status::kSuccess);
  // The VMM can re-delegate into the VM's guest-physical space.
  ASSERT_EQ(hv_.Delegate(vmm_, vmm_->caps().FindFree(kSelFirstFree), Crd{}, 0),
            Status::kBadCapability);  // Bogus selector first.
  // Install a VM pd capability into the VMM's space via object delegation.
  ASSERT_EQ(hv_.Delegate(root_, kVmmSel, Crd::Obj(kVmSel, 0, perm::kAll), 200),
            Status::kSuccess);
  ASSERT_EQ(hv_.Delegate(vmm_, 200, Crd::Mem(page, 4, perm::kRw), 0x10),
            Status::kSuccess);
  // The VM's nested page table now translates GPA 0x10000 -> HPA page<<12.
  const auto walk = vm_->mem_space().table().Walk(
      0x10ull << hw::kPageShift, hw::Access{.write = true, .user = true}, false);
  ASSERT_EQ(walk.status, Status::kSuccess);
  EXPECT_EQ(walk.pa, page << hw::kPageShift);
}

TEST_F(DelegateTest, CannotDelegateWhatYouDoNotHold) {
  const std::uint64_t page = (hv_.kernel_reserve() >> hw::kPageShift) + 100;
  ASSERT_EQ(hv_.Delegate(root_, kVmmSel, Crd::Obj(kVmSel, 0, perm::kAll), 200),
            Status::kSuccess);
  // VMM holds nothing yet: delegation of memory must fail.
  EXPECT_EQ(hv_.Delegate(vmm_, 200, Crd::Mem(page, 2, perm::kRw), 0),
            Status::kDenied);
}

TEST_F(DelegateTest, KernelMemoryNotDelegatable) {
  EXPECT_EQ(hv_.Delegate(root_, kVmmSel, Crd::Mem(2, 2, perm::kRw), 2),
            Status::kDenied);
}

TEST_F(DelegateTest, PermsOnlyNarrow) {
  const std::uint64_t page = (hv_.kernel_reserve() >> hw::kPageShift) + 200;
  // Grant read-only to the VMM.
  ASSERT_EQ(hv_.Delegate(root_, kVmmSel, Crd::Mem(page, 2, perm::kRead), page),
            Status::kSuccess);
  ASSERT_EQ(hv_.Delegate(root_, kVmmSel, Crd::Obj(kVmSel, 0, perm::kAll), 200),
            Status::kSuccess);
  // Re-delegating with write must not escalate: effective perms are ANDed,
  // so the VM's mapping is read-only.
  ASSERT_EQ(hv_.Delegate(vmm_, 200, Crd::Mem(page, 2, perm::kRw), 0x20),
            Status::kSuccess);
  const auto walk = vm_->mem_space().table().Walk(
      0x20ull << hw::kPageShift, hw::Access{.write = true, .user = true}, false);
  EXPECT_EQ(walk.status, Status::kMemoryFault);  // No write permission.
  const auto read_walk = vm_->mem_space().table().Walk(
      0x20ull << hw::kPageShift, hw::Access{.user = true}, false);
  EXPECT_EQ(read_walk.status, Status::kSuccess);
}

TEST_F(DelegateTest, IoPortDelegation) {
  ASSERT_EQ(hv_.Delegate(root_, kVmmSel, Crd::Io(0x3f8, 3), 0x3f8),
            Status::kSuccess);
  EXPECT_TRUE(vmm_->io_space().Test(0x3f8));
  EXPECT_TRUE(vmm_->io_space().Test(0x3ff));
  EXPECT_FALSE(vmm_->io_space().Test(0x400));
}

TEST_F(DelegateTest, ObjectDelegationNarrowsPerms) {
  // Create a semaphore in root, delegate up-only to the VMM.
  const CapSel sm_sel = 300;
  ASSERT_EQ(hv_.CreateSm(root_, sm_sel, 0), Status::kSuccess);
  ASSERT_EQ(hv_.Delegate(root_, kVmmSel,
                         Crd::Obj(sm_sel, 0, perm::kSmUp | perm::kDelegate), 50),
            Status::kSuccess);
  EXPECT_NE(vmm_->caps().LookupAs<Sm>(50, ObjType::kSm, perm::kSmUp), nullptr);
  EXPECT_EQ(vmm_->caps().LookupAs<Sm>(50, ObjType::kSm, perm::kSmDown), nullptr);
  // The VMM can use it: SmUp succeeds, SmDown is denied.
  EXPECT_EQ(hv_.SmUp(vmm_, 50), Status::kSuccess);
}

TEST_F(DelegateTest, RevocationCascades) {
  const std::uint64_t page = (hv_.kernel_reserve() >> hw::kPageShift) + 300;
  ASSERT_EQ(hv_.Delegate(root_, kVmmSel, Crd::Mem(page, 4, perm::kRw), page),
            Status::kSuccess);
  ASSERT_EQ(hv_.Delegate(root_, kVmmSel, Crd::Obj(kVmSel, 0, perm::kAll), 200),
            Status::kSuccess);
  ASSERT_EQ(hv_.Delegate(vmm_, 200, Crd::Mem(page, 4, perm::kRw), 0x30),
            Status::kSuccess);
  ASSERT_EQ(vm_->mem_space()
                .table()
                .Walk(0x30ull << hw::kPageShift, hw::Access{.user = true}, false)
                .status,
            Status::kSuccess);

  // Root revokes its grant to the VMM: the VM's derived mapping vanishes.
  ASSERT_EQ(hv_.Revoke(root_, Crd::Mem(page, 2, perm::kRw), /*include_self=*/false),
            Status::kSuccess);
  EXPECT_EQ(vm_->mem_space()
                .table()
                .Walk(0x30ull << hw::kPageShift, hw::Access{.user = true}, false)
                .status,
            Status::kMemoryFault);
  EXPECT_EQ(hv_.mdb().Find(vmm_, CrdKind::kMem, page, 4), nullptr);
  // Root still holds the range.
  EXPECT_NE(hv_.mdb().Find(root_, CrdKind::kMem, page, 4), nullptr);
}

TEST_F(DelegateTest, DestroyPdWithdrawsEverything) {
  const std::uint64_t page = (hv_.kernel_reserve() >> hw::kPageShift) + 400;
  ASSERT_EQ(hv_.Delegate(root_, kVmmSel, Crd::Mem(page, 4, perm::kRw), page),
            Status::kSuccess);
  ASSERT_EQ(hv_.Delegate(root_, kVmmSel, Crd::Obj(kVmSel, 0, perm::kAll), 200),
            Status::kSuccess);
  ASSERT_EQ(hv_.Delegate(vmm_, 200, Crd::Mem(page, 4, perm::kRw), 0x40),
            Status::kSuccess);

  // Keep the object alive across destruction so its state can be checked.
  auto vmm_ref = root_->caps().LookupRef(kVmmSel);
  ASSERT_EQ(hv_.DestroyPd(root_, kVmmSel), Status::kSuccess);
  EXPECT_TRUE(vmm_ref->dead());
  // The VM's mapping derived from the VMM is gone as well.
  EXPECT_EQ(vm_->mem_space()
                .table()
                .Walk(0x40ull << hw::kPageShift, hw::Access{.user = true}, false)
                .status,
            Status::kMemoryFault);
}

TEST_F(DelegateTest, LargePageDelegation) {
  const std::uint64_t large_pages =
      hw::LargePageSize(machine_.cpu(0).model().host_paging) / hw::kPageSize;
  std::uint64_t page = (hv_.kernel_reserve() >> hw::kPageShift) + large_pages;
  page = page / large_pages * large_pages;  // Superpage-align.
  ASSERT_EQ(hv_.Delegate(root_, kVmmSel, Crd::Obj(kVmSel, 0, perm::kAll), 200),
            Status::kSuccess);
  ASSERT_EQ(hv_.Delegate(root_, kVmmSel,
                         Crd{CrdKind::kMem, page, 10, perm::kRw}, page),
            Status::kSuccess);
  ASSERT_EQ(hv_.Delegate(vmm_, 200, Crd{CrdKind::kMem, page, 9, perm::kRw}, 0,
                         0xff, /*large=*/true),
            Status::kSuccess);
  const auto walk =
      vm_->mem_space().table().Walk(0, hw::Access{.write = true, .user = true}, false);
  ASSERT_EQ(walk.status, Status::kSuccess);
  EXPECT_EQ(walk.page_size, hw::LargePageSize(machine_.cpu(0).model().host_paging));
}

}  // namespace
}  // namespace nova::hv
