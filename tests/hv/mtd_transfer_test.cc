// Message transfer descriptors: only the selected architectural state
// moves between vCPU and VMM, and the VMCS-access cost scales with the
// descriptor (§5.2's performance optimization).
#include <gtest/gtest.h>

#include "src/hw/isa.h"
#include "tests/hv/test_util.h"

namespace nova::hv {
namespace {

class MtdTransferTest : public HvTest {
 protected:
  static constexpr CapSel kVmPd = 100;
  static constexpr CapSel kVcpuSel = 101;
  static constexpr CapSel kEvtBase = 0x200;

  void SetUpVm(Mtd cpuid_mtd) {
    ASSERT_EQ(hv_.CreatePd(root_, kVmPd, "vm", true, &vm_), Status::kSuccess);
    const std::uint64_t base = hv_.kernel_reserve() >> hw::kPageShift;
    ASSERT_EQ(hv_.Delegate(root_, kVmPd, Crd{CrdKind::kMem, base, 12, perm::kRwx}, 0),
              Status::kSuccess);
    ASSERT_EQ(hv_.CreateVcpu(root_, kVcpuSel, kVmPd, 0, kEvtBase, &vcpu_),
              Status::kSuccess);

    ASSERT_EQ(hv_.CreateEcLocal(root_, 110, kSelOwnPd, 0,
                                [this](std::uint64_t) {
                                  ++exits_;
                                  Utcb& u = handler_->utcb();
                                  seen_ = u.arch;
                                  seen_mtd_ = u.mtd;
                                  u.arch.rip += u.arch.insn_len;
                                },
                                &handler_),
              Status::kSuccess);
    ASSERT_EQ(hv_.CreatePt(root_, 111, 110, cpuid_mtd,
                           static_cast<std::uint64_t>(Event::kCpuid)),
              Status::kSuccess);
    ASSERT_EQ(hv_.Delegate(root_, kVmPd, Crd::Obj(111, 0, perm::kCall),
                           kEvtBase + static_cast<CapSel>(Event::kCpuid)),
              Status::kSuccess);

    hw::isa::Assembler as(0x1000);
    as.MovImm(0, 0x1111);
    as.MovImm(5, 0x5555);
    as.Cpuid();
    as.Hlt();
    (void)machine_.mem().Write((base << hw::kPageShift) + 0x1000, as.bytes().data(),
                         as.bytes().size());
    vcpu_->gstate().rip = 0x1000;
    ASSERT_EQ(hv_.CreateSc(root_, 120, kVcpuSel, 1, 30'000'000), Status::kSuccess);
  }

  void RunToExit() {
    for (int i = 0; i < 10 && exits_ == 0 && hv_.StepOnce(); ++i) {
    }
  }

  Pd* vm_ = nullptr;
  Ec* vcpu_ = nullptr;
  Ec* handler_ = nullptr;
  ArchState seen_{};
  Mtd seen_mtd_ = 0;
  int exits_ = 0;
};

TEST_F(MtdTransferTest, OnlySelectedGroupsTransfer) {
  SetUpVm(mtd::kGprAcdb | mtd::kRip);  // The paper's CPUID portal set.
  RunToExit();
  ASSERT_EQ(exits_, 1);
  EXPECT_EQ(seen_mtd_, mtd::kGprAcdb | mtd::kRip);
  EXPECT_EQ(seen_.regs[0], 0x1111u);  // In kGprAcdb: transferred.
  EXPECT_EQ(seen_.regs[5], 0u);       // In kGprBsd: NOT transferred.
  EXPECT_EQ(seen_.rip, 0x1000u + 2 * hw::isa::kInsnSize);
}

TEST_F(MtdTransferTest, ReplyWritesBackOnlySelectedGroups) {
  SetUpVm(mtd::kGprAcdb | mtd::kRip);
  // The handler writes both register groups; only ACDB reaches the vCPU.
  handler_->set_handler([this](std::uint64_t) {
    ++exits_;
    Utcb& u = handler_->utcb();
    u.arch.regs[0] = 0xaaaa;
    u.arch.regs[5] = 0xbbbb;
    u.arch.rip += u.arch.insn_len;
  });
  RunToExit();
  ASSERT_EQ(exits_, 1);
  EXPECT_EQ(vcpu_->gstate().regs[0], 0xaaaau);
  EXPECT_EQ(vcpu_->gstate().regs[5], 0x5555u);  // Untouched.
}

TEST_F(MtdTransferTest, WiderMtdCostsMoreVmreads) {
  // Run once with the minimal descriptor, once with everything; the wider
  // portal pays more VMCS accesses + copies — the §5.2 optimization.
  SetUpVm(mtd::kGprAcdb | mtd::kRip);
  const sim::Cycles before_small = machine_.cpu(0).cycles();
  RunToExit();
  const sim::Cycles small = machine_.cpu(0).cycles() - before_small;
  ASSERT_EQ(exits_, 1);

  // Reconfigure the portal's descriptor and re-run the same guest.
  exits_ = 0;
  ASSERT_EQ(hv_.PtCtrlMtd(root_, 111, mtd::kAll & ~mtd::kTlbFlush),
            Status::kSuccess);
  vcpu_->gstate().rip = 0x1000;
  vcpu_->gstate().halted = false;
  hv_.WakeEc(vcpu_);
  const sim::Cycles before_wide = machine_.cpu(0).cycles();
  RunToExit();
  const sim::Cycles wide_cost = machine_.cpu(0).cycles() - before_wide;
  ASSERT_EQ(exits_, 1);
  EXPECT_GT(wide_cost, small);
}

TEST_F(MtdTransferTest, WordCountsMatchGroups) {
  EXPECT_EQ(mtd::WordCount(0), 0);
  EXPECT_EQ(mtd::WordCount(mtd::kGprAcdb), 4);
  EXPECT_EQ(mtd::WordCount(mtd::kGprAcdb | mtd::kGprBsd), 8);
  EXPECT_EQ(mtd::WordCount(mtd::kRip), 2);
  EXPECT_EQ(mtd::WordCount(mtd::kRflags | mtd::kSta | mtd::kTsc), 3);
  EXPECT_EQ(mtd::WordCount(mtd::kCr | mtd::kQual), 6);
  EXPECT_EQ(mtd::WordCount(mtd::kTlbFlush), 0);  // Control-only bit.
  EXPECT_EQ(mtd::WordCount(mtd::kAll), 21);
}

}  // namespace
}  // namespace nova::hv
