// Virtual CPUs: VM-exit dispatch through event portals, MTD-governed state
// transfer, halt/recall, interrupt delivery.
#include <gtest/gtest.h>

#include "src/hw/isa.h"
#include "tests/hv/test_util.h"

namespace nova::hv {
namespace {

class VcpuTest : public HvTest {
 protected:
  static constexpr CapSel kVmPd = 100;
  static constexpr CapSel kVcpuSel = 101;
  static constexpr CapSel kScSel = 102;
  static constexpr CapSel kEvtBase = 200;   // In the VM's cap space.
  static constexpr CapSel kHandlerBase = 300;  // Handler EC selectors (root).
  static constexpr CapSel kPortalBase = 320;

  VcpuTest() {
    EXPECT_EQ(hv_.CreatePd(root_, kVmPd, "vm", true, &vm_), Status::kSuccess);
    // Delegate 32 MiB of guest memory at GPA 0.
    guest_base_page_ = (hv_.kernel_reserve() >> hw::kPageShift);
    EXPECT_EQ(hv_.Delegate(root_, kVmPd,
                           Crd{CrdKind::kMem, guest_base_page_, 13, perm::kRwx}, 0),
              Status::kSuccess);
    EXPECT_EQ(hv_.CreateVcpu(root_, kVcpuSel, kVmPd, 0, kEvtBase, &vcpu_),
              Status::kSuccess);
  }

  // Install a VM-exit portal for `event`, handled by `fn` in the root PD
  // (root plays the VMM here).
  void InstallPortal(Event event, Mtd m, Ec::Handler fn) {
    const auto idx = static_cast<CapSel>(event);
    Ec* handler = nullptr;
    ASSERT_EQ(hv_.CreateEcLocal(root_, kHandlerBase + idx, kSelOwnPd, 0,
                                std::move(fn), &handler),
              Status::kSuccess);
    handlers_[idx] = handler;
    ASSERT_EQ(hv_.CreatePt(root_, kPortalBase + idx, kHandlerBase + idx, m,
                           static_cast<std::uint64_t>(event)),
              Status::kSuccess);
    ASSERT_EQ(hv_.Delegate(root_, kVmPd, Crd::Obj(kPortalBase + idx, 0, perm::kCall),
                           kEvtBase + idx),
              Status::kSuccess);
  }

  hw::PhysAddr GuestHpa(std::uint64_t gpa) {
    return (guest_base_page_ << hw::kPageShift) + gpa;
  }

  void InstallProgram(const hw::isa::Assembler& as) {
    (void)machine_.mem().Write(GuestHpa(as.base()), as.bytes().data(), as.bytes().size());
  }

  void StartVcpu() {
    ASSERT_EQ(hv_.CreateSc(root_, kScSel, kVcpuSel, 1, 30'000'000), Status::kSuccess);
  }

  void RunSteps(int n) {
    for (int i = 0; i < n; ++i) {
      if (!hv_.StepOnce()) {
        break;
      }
    }
  }

  Pd* vm_ = nullptr;
  Ec* vcpu_ = nullptr;
  std::uint64_t guest_base_page_ = 0;
  Ec* handlers_[kNumEvents] = {};
};

TEST_F(VcpuTest, CpuidExitsToVmmWithMinimalState) {
  hw::isa::Assembler as(0x1000);
  as.MovImm(0, 0xdead);
  as.Cpuid();
  as.Hlt();
  InstallProgram(as);
  vcpu_->gstate().rip = 0x1000;

  std::uint64_t seen_rax = 0;
  InstallPortal(Event::kCpuid, mtd::kGprAcdb | mtd::kRip, [&](std::uint64_t id) {
    EXPECT_EQ(id, static_cast<std::uint64_t>(Event::kCpuid));
    Utcb& u = handlers_[static_cast<int>(Event::kCpuid)]->utcb();
    seen_rax = u.arch.regs[0];
    u.arch.regs[0] = 0x1234;           // Emulated CPUID result.
    u.arch.rip += u.arch.insn_len;     // Advance past the instruction.
  });
  bool halted_seen = false;
  InstallPortal(Event::kHlt, mtd::kSta | mtd::kRip, [&](std::uint64_t) {
    Utcb& u = handlers_[static_cast<int>(Event::kHlt)]->utcb();
    u.arch.halted = true;  // Park the vCPU.
    halted_seen = true;
  });

  StartVcpu();
  RunSteps(10);
  EXPECT_EQ(seen_rax, 0xdeadu);
  EXPECT_TRUE(halted_seen);
  EXPECT_EQ(vcpu_->gstate().regs[0], 0x1234u);
  EXPECT_EQ(vcpu_->block_state(), Ec::BlockState::kBlockedHalt);
  EXPECT_EQ(hv_.EventCount("CPUID"), 1u);
  EXPECT_EQ(hv_.EventCount("HLT"), 1u);
}

TEST_F(VcpuTest, PioExitCarriesQualification) {
  hw::isa::Assembler as(0x1000);
  as.MovImm(3, 0x42);
  as.Out(0x70, 3);
  as.Hlt();
  InstallProgram(as);
  vcpu_->gstate().rip = 0x1000;

  std::uint16_t port = 0;
  std::uint64_t value = 0;
  bool is_write = false;
  InstallPortal(Event::kPio, mtd::kGprAcdb | mtd::kRip | mtd::kQual,
                [&](std::uint64_t) {
                  Utcb& u = handlers_[static_cast<int>(Event::kPio)]->utcb();
                  port = static_cast<std::uint16_t>(u.arch.qual & 0xffff);
                  is_write = (u.arch.qual >> 24) & 1;
                  value = u.arch.regs[3];
                  u.arch.rip += u.arch.insn_len;
                });
  InstallPortal(Event::kHlt, mtd::kSta, [&](std::uint64_t) {
    handlers_[static_cast<int>(Event::kHlt)]->utcb().arch.halted = true;
  });

  StartVcpu();
  RunSteps(10);
  EXPECT_EQ(port, 0x70);
  EXPECT_TRUE(is_write);
  EXPECT_EQ(value, 0x42u);
  EXPECT_EQ(hv_.EventCount("Port I/O"), 1u);
}

TEST_F(VcpuTest, MmioExitDeliversGpa) {
  hw::isa::Assembler as(0x1000);
  as.MovImm(0, 7);
  as.StoreAbs(0, 0xfee00040);  // Unmapped guest-physical address.
  as.Hlt();
  InstallProgram(as);
  vcpu_->gstate().rip = 0x1000;

  std::uint64_t gpa = 0;
  InstallPortal(Event::kMmio, mtd::kGprAcdb | mtd::kRip | mtd::kQual,
                [&](std::uint64_t) {
                  Utcb& u = handlers_[static_cast<int>(Event::kMmio)]->utcb();
                  gpa = u.arch.qual_gpa;
                  u.arch.rip += u.arch.insn_len;  // Emulated elsewhere.
                });
  InstallPortal(Event::kHlt, mtd::kSta, [&](std::uint64_t) {
    handlers_[static_cast<int>(Event::kHlt)]->utcb().arch.halted = true;
  });

  StartVcpu();
  RunSteps(10);
  EXPECT_EQ(gpa, 0xfee00040u);
  EXPECT_EQ(hv_.EventCount("Memory-Mapped I/O"), 1u);
}

TEST_F(VcpuTest, UnhandledEventParksVcpu) {
  hw::isa::Assembler as(0x1000);
  as.Cpuid();  // No portal installed.
  InstallProgram(as);
  vcpu_->gstate().rip = 0x1000;
  StartVcpu();
  RunSteps(5);
  EXPECT_EQ(hv_.EventCount("vm-event-unhandled"), 1u);
}

TEST_F(VcpuTest, RecallWakesHaltedVcpuAndInjects) {
  hw::isa::Assembler handler_code(0x3000);
  handler_code.MovImm(5, 0xbeef);
  handler_code.StoreAbs(5, 0x5000);  // ISR results go through memory.
  handler_code.Iret();
  InstallProgram(handler_code);

  hw::isa::Assembler as(0x1000);
  as.SetIdt(33, 0x3000);
  as.Sti();
  as.Hlt();
  as.Hlt();
  InstallProgram(as);
  vcpu_->gstate().rip = 0x1000;

  InstallPortal(Event::kHlt, mtd::kSta | mtd::kRip, [&](std::uint64_t) {
    handlers_[static_cast<int>(Event::kHlt)]->utcb().arch.halted = true;
  });
  int recalls = 0;
  InstallPortal(Event::kRecall, mtd::kInj | mtd::kSta | mtd::kRflags,
                [&](std::uint64_t) {
                  Utcb& u = handlers_[static_cast<int>(Event::kRecall)]->utcb();
                  ++recalls;
                  u.arch.inject_pending = true;   // Inject vector 33.
                  u.arch.inject_vector = 33;
                  u.arch.halted = false;
                });

  StartVcpu();
  RunSteps(10);
  ASSERT_EQ(vcpu_->block_state(), Ec::BlockState::kBlockedHalt);

  // Device completion path: the VMM recalls the vCPU to inject (§7.5).
  ASSERT_EQ(hv_.Recall(root_, kVcpuSel), Status::kSuccess);
  EXPECT_EQ(vcpu_->block_state(), Ec::BlockState::kRunnable);
  RunSteps(10);
  EXPECT_EQ(recalls, 1);
  EXPECT_EQ(machine_.mem().Read64(GuestHpa(0x5000)), 0xbeefu);
  EXPECT_EQ(hv_.EventCount("Recall"), 1u);
}

TEST_F(VcpuTest, ExternalInterruptExitsAndSignalsSemaphore) {
  constexpr CapSel kSm = 400;
  constexpr std::uint32_t kGsi = 5;
  ASSERT_EQ(hv_.CreateSm(root_, kSm, 0), Status::kSuccess);
  ASSERT_EQ(hv_.AssignGsi(root_, kSm, kGsi, 0), Status::kSuccess);
  machine_.irq().Unmask(kGsi);

  hw::isa::Assembler as(0x1000);
  const std::uint64_t top = as.NopBlock(500);
  as.Jmp(top);
  InstallProgram(as);
  vcpu_->gstate().rip = 0x1000;
  StartVcpu();

  RunSteps(2);
  machine_.irq().Assert(kGsi);
  RunSteps(3);
  EXPECT_GE(hv_.EventCount("Hardware Interrupts"), 1u);
  // The semaphore collected the interrupt.
  Sm* sm = root_->caps().LookupAs<Sm>(kSm, ObjType::kSm, 0);
  ASSERT_NE(sm, nullptr);
  EXPECT_EQ(sm->counter(), 1u);
}

TEST_F(VcpuTest, DirectInterruptDeliveryWithoutExit) {
  hw::isa::Assembler handler_code(0x3000);
  handler_code.MovImm(5, 1);
  handler_code.StoreAbs(5, 0x5000);  // ISR results go through memory.
  handler_code.Iret();
  InstallProgram(handler_code);

  hw::isa::Assembler as(0x1000);
  as.SetIdt(32 + 9, 0x3000);
  as.Sti();
  as.Hlt();
  as.Hlt();
  InstallProgram(as);
  vcpu_->gstate().rip = 0x1000;
  vcpu_->ctl().direct_interrupts = true;
  vcpu_->ctl().intercept_hlt = false;

  ASSERT_EQ(hv_.AssignGsiDirect(root_, kVcpuSel, 9), Status::kSuccess);
  StartVcpu();
  RunSteps(5);
  EXPECT_EQ(vcpu_->block_state(), Ec::BlockState::kBlockedHalt);

  machine_.irq().Assert(9);
  RunSteps(5);
  EXPECT_EQ(machine_.mem().Read64(GuestHpa(0x5000)), 1u);
  // No VM exits were taken for the interrupt.
  EXPECT_EQ(hv_.EventCount("Hardware Interrupts"), 0u);
}

TEST_F(VcpuTest, InterruptWindowFlow) {
  hw::isa::Assembler handler_code(0x3000);
  handler_code.MovImm(5, 0x77);
  handler_code.StoreAbs(5, 0x5000);  // ISR results go through memory.
  handler_code.Iret();
  InstallProgram(handler_code);

  hw::isa::Assembler as(0x1000);
  as.SetIdt(34, 0x3000);
  as.Cli();
  as.Cpuid();    // Exit while interrupts are disabled.
  as.NopBlock(10);
  as.Sti();      // Window opens.
  as.Hlt();
  InstallProgram(as);
  vcpu_->gstate().rip = 0x1000;

  InstallPortal(Event::kCpuid, mtd::kRip | mtd::kRflags | mtd::kInj,
                [&](std::uint64_t) {
                  Utcb& u = handlers_[static_cast<int>(Event::kCpuid)]->utcb();
                  EXPECT_FALSE(u.arch.interrupts_enabled);
                  // Want to inject 34 but IF=0: request a window exit.
                  u.arch.request_intr_window = true;
                  u.arch.rip += u.arch.insn_len;
                });
  InstallPortal(Event::kIntrWindow, mtd::kInj | mtd::kRflags, [&](std::uint64_t) {
    Utcb& u = handlers_[static_cast<int>(Event::kIntrWindow)]->utcb();
    u.arch.inject_pending = true;
    u.arch.inject_vector = 34;
    u.arch.request_intr_window = false;
  });
  InstallPortal(Event::kHlt, mtd::kSta, [&](std::uint64_t) {
    handlers_[static_cast<int>(Event::kHlt)]->utcb().arch.halted = true;
  });

  StartVcpu();
  RunSteps(10);
  EXPECT_EQ(hv_.EventCount("Interrupt Window"), 1u);
  EXPECT_EQ(machine_.mem().Read64(GuestHpa(0x5000)), 0x77u);
}

TEST_F(VcpuTest, VmCannotReachHypervisorMemory) {
  // A guest store to an address above its delegated region exits as MMIO
  // (EPT violation); the hypervisor's own memory cannot be named at all
  // because the nested table only contains delegated frames.
  hw::isa::Assembler as(0x1000);
  as.MovImm(0, 0x666);
  as.StoreAbs(0, 64ull << 20);  // Beyond the 32 MiB delegation.
  as.Hlt();
  InstallProgram(as);
  vcpu_->gstate().rip = 0x1000;

  int mmio_exits = 0;
  InstallPortal(Event::kMmio, mtd::kRip | mtd::kQual, [&](std::uint64_t) {
    Utcb& u = handlers_[static_cast<int>(Event::kMmio)]->utcb();
    ++mmio_exits;
    u.arch.rip += u.arch.insn_len;
  });
  InstallPortal(Event::kHlt, mtd::kSta, [&](std::uint64_t) {
    handlers_[static_cast<int>(Event::kHlt)]->utcb().arch.halted = true;
  });
  StartVcpu();
  RunSteps(10);
  EXPECT_EQ(mmio_exits, 1);
  // Kernel memory is untouched.
  EXPECT_EQ(machine_.mem().Read64(64ull << 20), 0u);
}

}  // namespace
}  // namespace nova::hv
