// Shared fixture for microhypervisor tests: a booted machine with a root
// protection domain.
#ifndef TESTS_HV_TEST_UTIL_H_
#define TESTS_HV_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>

#include "src/hw/machine.h"
#include "src/hv/kernel.h"

namespace nova::hv {

class HvTest : public ::testing::Test {
 protected:
  explicit HvTest(hw::MachineConfig config = DefaultConfig())
      : machine_(config), hv_(&machine_) {
    root_ = hv_.Boot();
  }

  static hw::MachineConfig DefaultConfig() {
    return hw::MachineConfig{.cpus = {&hw::CoreI7_920()}, .ram_size = 512ull << 20};
  }

  // Allocate a free selector in `pd`.
  CapSel Free(Pd* pd) { return pd->caps().FindFree(kSelFirstFree); }

  hw::Machine machine_;
  Hypervisor hv_;
  Pd* root_ = nullptr;
};

}  // namespace nova::hv

#endif  // TESTS_HV_TEST_UTIL_H_
