#include "src/hv/cap_space.h"

#include <gtest/gtest.h>

#include "src/hv/objects.h"

namespace nova::hv {
namespace {

ObjRef MakeSm(std::uint64_t v = 0) { return std::make_shared<Sm>(v); }

TEST(CapSpace, InsertAndLookup) {
  CapSpace caps;
  ASSERT_EQ(caps.Insert(5, Capability{MakeSm(), perm::kAll}), Status::kSuccess);
  const Capability* cap = caps.Lookup(5);
  ASSERT_NE(cap, nullptr);
  EXPECT_EQ(cap->object->type(), ObjType::kSm);
  EXPECT_EQ(cap->perms, perm::kAll);
}

TEST(CapSpace, EmptySlotLookupFails) {
  CapSpace caps;
  EXPECT_EQ(caps.Lookup(5), nullptr);
  EXPECT_EQ(caps.Lookup(kCapSpaceSlots + 10), nullptr);
}

TEST(CapSpace, OccupiedSlotRejectsInsert) {
  CapSpace caps;
  ASSERT_EQ(caps.Insert(5, Capability{MakeSm(), perm::kAll}), Status::kSuccess);
  EXPECT_EQ(caps.Insert(5, Capability{MakeSm(), perm::kAll}), Status::kBusy);
}

TEST(CapSpace, OutOfRangeInsertOverflows) {
  CapSpace caps;
  EXPECT_EQ(caps.Insert(kCapSpaceSlots, Capability{MakeSm(), 0}), Status::kOverflow);
}

TEST(CapSpace, TypedLookupChecksTypeAndPerms) {
  CapSpace caps;
  (void)caps.Insert(3, Capability{MakeSm(), perm::kSmUp});
  EXPECT_NE(caps.LookupAs<Sm>(3, ObjType::kSm, perm::kSmUp), nullptr);
  // Wrong type.
  EXPECT_EQ(caps.LookupAs<Pt>(3, ObjType::kPt, 0), nullptr);
  // Missing permission.
  EXPECT_EQ(caps.LookupAs<Sm>(3, ObjType::kSm, perm::kSmDown), nullptr);
}

TEST(CapSpace, DeadObjectLookupFails) {
  CapSpace caps;
  auto sm = MakeSm();
  (void)caps.Insert(4, Capability{sm, perm::kAll});
  sm->MarkDead();
  EXPECT_EQ(caps.Lookup(4), nullptr);
}

TEST(CapSpace, RemoveFreesSlot) {
  CapSpace caps;
  (void)caps.Insert(6, Capability{MakeSm(), perm::kAll});
  EXPECT_EQ(caps.Remove(6), Status::kSuccess);
  EXPECT_EQ(caps.Lookup(6), nullptr);
  EXPECT_EQ(caps.Insert(6, Capability{MakeSm(), perm::kAll}), Status::kSuccess);
}

TEST(CapSpace, FindFreeSkipsUsedSlots) {
  CapSpace caps;
  (void)caps.Insert(32, Capability{MakeSm(), perm::kAll});
  (void)caps.Insert(33, Capability{MakeSm(), perm::kAll});
  EXPECT_EQ(caps.FindFree(32), 34u);
}

TEST(CapSpace, UsedCountsOccupiedSlots) {
  CapSpace caps;
  EXPECT_EQ(caps.used(), 0u);
  (void)caps.Insert(1, Capability{MakeSm(), perm::kAll});
  (void)caps.Insert(2, Capability{MakeSm(), perm::kAll});
  EXPECT_EQ(caps.used(), 2u);
}

}  // namespace
}  // namespace nova::hv
