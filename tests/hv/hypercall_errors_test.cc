// Error paths of the hypercall interface: every malformed or unauthorized
// invocation must fail cleanly — this *is* the attack surface a
// compromised VMM gets to poke at (§4.2, "VMM attacks").
#include <gtest/gtest.h>

#include "src/root/root_pm.h"
#include "tests/hv/test_util.h"

namespace nova::hv {
namespace {

class HypercallErrorsTest : public HvTest {};

TEST_F(HypercallErrorsTest, CreateEcRejectsBadCpuAndBadPd) {
  EXPECT_EQ(hv_.CreateEcLocal(root_, 100, kSelOwnPd, 99, [](std::uint64_t) {}),
            Status::kBadCpu);
  EXPECT_EQ(hv_.CreateEcLocal(root_, 100, 999, 0, [](std::uint64_t) {}),
            Status::kBadCapability);
  EXPECT_EQ(hv_.CreateEcGlobal(root_, 100, 999, 0, [] {}), Status::kBadCapability);
}

TEST_F(HypercallErrorsTest, CreateVcpuRequiresVmDomain) {
  Pd* not_vm = nullptr;
  ASSERT_EQ(hv_.CreatePd(root_, 100, "plain", false, &not_vm), Status::kSuccess);
  EXPECT_EQ(hv_.CreateVcpu(root_, 101, 100, 0, 0x200), Status::kBadParameter);
}

TEST_F(HypercallErrorsTest, CreateScRejectsLocalEcAndZeroQuantum) {
  ASSERT_EQ(hv_.CreateEcLocal(root_, 100, kSelOwnPd, 0, [](std::uint64_t) {}),
            Status::kSuccess);
  EXPECT_EQ(hv_.CreateSc(root_, 101, 100, 5, 1000), Status::kBadParameter);

  ASSERT_EQ(hv_.CreateEcGlobal(root_, 102, kSelOwnPd, 0, [] {}), Status::kSuccess);
  EXPECT_EQ(hv_.CreateSc(root_, 103, 102, 5, 0), Status::kBadParameter);
  // Double SC on one EC.
  ASSERT_EQ(hv_.CreateSc(root_, 103, 102, 5, 1000), Status::kSuccess);
  EXPECT_EQ(hv_.CreateSc(root_, 104, 102, 5, 1000), Status::kBusy);
}

TEST_F(HypercallErrorsTest, CreatePtRequiresLocalHandler) {
  ASSERT_EQ(hv_.CreateEcGlobal(root_, 100, kSelOwnPd, 0, [] {}), Status::kSuccess);
  EXPECT_EQ(hv_.CreatePt(root_, 101, 100, 0, 0), Status::kBadParameter);
  EXPECT_EQ(hv_.CreatePt(root_, 101, 999, 0, 0), Status::kBadCapability);
}

TEST_F(HypercallErrorsTest, OccupiedSlotRejectsCreation) {
  ASSERT_EQ(hv_.CreateSm(root_, 100, 0), Status::kSuccess);
  EXPECT_EQ(hv_.CreateSm(root_, 100, 0), Status::kBusy);
  EXPECT_EQ(hv_.CreatePd(root_, 100, "x", false), Status::kBusy);
}

TEST_F(HypercallErrorsTest, WrongObjectTypeRejected) {
  ASSERT_EQ(hv_.CreateSm(root_, 100, 0), Status::kSuccess);
  // A semaphore is not a portal / pd / ec.
  Ec* ec = nullptr;
  ASSERT_EQ(hv_.CreateEcGlobal(root_, 101, kSelOwnPd, 0, [] {}, &ec),
            Status::kSuccess);
  EXPECT_EQ(hv_.Call(ec, 100), Status::kBadCapability);
  EXPECT_EQ(hv_.DestroyPd(root_, 100), Status::kBadCapability);
  EXPECT_EQ(hv_.Recall(root_, 100), Status::kBadCapability);
}

TEST_F(HypercallErrorsTest, SemaphorePermissionBitsEnforced) {
  Pd* child = nullptr;
  ASSERT_EQ(hv_.CreatePd(root_, 100, "child", false, &child), Status::kSuccess);
  ASSERT_EQ(hv_.CreateSm(root_, 101, 1), Status::kSuccess);
  // Down-only delegation: Up must fail.
  ASSERT_EQ(hv_.Delegate(root_, 100, Crd::Obj(101, 0, perm::kSmDown | perm::kDelegate),
                         50),
            Status::kSuccess);
  EXPECT_EQ(hv_.SmUp(child, 50), Status::kBadCapability);
  Ec* child_ec = nullptr;
  ASSERT_EQ(hv_.CreateEcGlobal(root_, 102, 100, 0, [] {}, &child_ec),
            Status::kSuccess);
  EXPECT_EQ(hv_.SmDown(child_ec, 50), Hypervisor::DownResult::kAcquired);
}

TEST_F(HypercallErrorsTest, DestroyRootDenied) {
  EXPECT_EQ(hv_.DestroyPd(root_, kSelOwnPd), Status::kDenied);
}

TEST_F(HypercallErrorsTest, RevokeOfUnheldRangeIsHarmless) {
  EXPECT_EQ(hv_.Revoke(root_, Crd::Mem(1, 2, perm::kRw), false), Status::kSuccess);
  EXPECT_EQ(hv_.Revoke(root_, Crd{}, false), Status::kSuccess);
}

TEST_F(HypercallErrorsTest, DelegateNullCrdRejected) {
  ASSERT_EQ(hv_.CreatePd(root_, 100, "child", false), Status::kSuccess);
  EXPECT_EQ(hv_.Delegate(root_, 100, Crd{}, 0), Status::kBadParameter);
}

TEST_F(HypercallErrorsTest, AssignGsiValidatesRanges) {
  ASSERT_EQ(hv_.CreateSm(root_, 100, 0), Status::kSuccess);
  EXPECT_EQ(hv_.AssignGsi(root_, 100, hw::kNumGsis + 5, 0), Status::kBadParameter);
  EXPECT_EQ(hv_.AssignGsi(root_, 100, 3, 99), Status::kBadParameter);
  EXPECT_EQ(hv_.AssignGsi(root_, 999, 3, 0), Status::kBadCapability);
}

TEST_F(HypercallErrorsTest, CallAcrossCpusBecomesXcall) {
  // A portal whose handler lives on another core is reached by xcall: the
  // caller's SC is handed off to the handler's home core and the caller
  // blocks until the reply. The handler's work is charged to its own
  // core, and the caller resumes no earlier than the remote completion.
  hw::MachineConfig config{.cpus = {&hw::CoreI7_920(), &hw::CoreI7_920()},
                           .ram_size = 512ull << 20};
  hw::Machine machine(config);
  Hypervisor hv(&machine);
  Pd* root = hv.Boot();
  std::uint32_t handler_cpu = ~0u;
  Ec* handler = nullptr;
  ASSERT_EQ(hv.CreateEcLocal(
                root, 100, kSelOwnPd, /*cpu=*/1,
                [&](std::uint64_t) { handler_cpu = handler->cpu(); }, &handler),
            Status::kSuccess);
  ASSERT_EQ(hv.CreatePt(root, 101, 100, 0, 0), Status::kSuccess);
  Ec* caller = nullptr;
  ASSERT_EQ(hv.CreateEcGlobal(root, 102, kSelOwnPd, /*cpu=*/0, [] {}, &caller),
            Status::kSuccess);

  const sim::PicoSeconds remote_before = machine.cpu(1).NowPs();
  EXPECT_EQ(hv.Call(caller, 101), Status::kSuccess);
  EXPECT_EQ(handler_cpu, 1u);  // The handler ran, on its home core.
  EXPECT_EQ(hv.EventCount("ipc-xcalls"), 1u);
  // The handler core did the portal work...
  EXPECT_GT(machine.cpu(1).NowPs(), remote_before);
  // ...and the blocked caller resumed only after the reply IPI.
  EXPECT_GE(machine.cpu(0).NowPs(), machine.cpu(1).NowPs());

  // Same-core calls stay xcall-free.
  Ec* peer = nullptr;
  ASSERT_EQ(hv.CreateEcLocal(root, 103, kSelOwnPd, /*cpu=*/0,
                             [](std::uint64_t) {}, &peer),
            Status::kSuccess);
  ASSERT_EQ(hv.CreatePt(root, 104, 103, 0, 0), Status::kSuccess);
  EXPECT_EQ(hv.Call(caller, 104), Status::kSuccess);
  EXPECT_EQ(hv.EventCount("ipc-xcalls"), 1u);
}

TEST_F(HypercallErrorsTest, CallToBusyHandlerRejected) {
  // One in-flight call per handler EC: a re-entrant call through the same
  // portal while the handler is executing must bounce with kBusy.
  Status reentry = Status::kSuccess;
  Ec* handler = nullptr;
  ASSERT_EQ(hv_.CreateEcLocal(root_, 100, kSelOwnPd, 0,
                              [&](std::uint64_t) { reentry = hv_.Call(handler, 101); },
                              &handler),
            Status::kSuccess);
  ASSERT_EQ(hv_.CreatePt(root_, 101, 100, 0, 0), Status::kSuccess);
  Ec* caller = nullptr;
  ASSERT_EQ(hv_.CreateEcGlobal(root_, 102, kSelOwnPd, 0, [] {}, &caller),
            Status::kSuccess);
  EXPECT_EQ(hv_.Call(caller, 101), Status::kSuccess);
  EXPECT_EQ(reentry, Status::kBusy);
}

TEST_F(HypercallErrorsTest, UnknownDeviceRejected) {
  // Device assignment of a name the root never registered, interrupt
  // binding against it, and a DMA mapping for a device id the IOMMU has no
  // context for: all must report kBadDevice.
  root::RootPartitionManager pm(&hv_);
  const hv::CapSel child = pm.CreatePd("driver", /*is_vm=*/false);
  EXPECT_EQ(pm.AssignDevice(child, "no-such-device"), Status::kBadDevice);
  EXPECT_EQ(pm.BindInterrupt(child, "no-such-device", 50, 0), Status::kBadDevice);
  EXPECT_EQ(machine_.iommu().Map(/*dev=*/123, 0x1000, 0x1000, hw::kPageSize,
                                 /*writable=*/true, nullptr),
            Status::kBadDevice);
}

TEST_F(HypercallErrorsTest, DoubleDestroyPdRejected) {
  ASSERT_EQ(hv_.CreatePd(root_, 100, "victim", false), Status::kSuccess);
  EXPECT_EQ(hv_.DestroyPd(root_, 100), Status::kSuccess);
  // The control capability was removed with the domain: destroying it
  // again is an ordinary bad-capability error, not a crash.
  EXPECT_EQ(hv_.DestroyPd(root_, 100), Status::kBadCapability);
}

TEST_F(HypercallErrorsTest, CapSpaceExhaustionOverflows) {
  // Fill the caller's capability space, then one more creation fails.
  CapSel sel = root_->caps().FindFree(kSelFirstFree);
  Status s = Status::kSuccess;
  while (sel != kInvalidSel && Ok(s)) {
    s = hv_.CreateSm(root_, sel, 0);
    sel = root_->caps().FindFree(sel);
  }
  EXPECT_EQ(hv_.CreateSm(root_, kCapSpaceSlots, 0), Status::kOverflow);
}

}  // namespace
}  // namespace nova::hv
