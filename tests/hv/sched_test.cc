// Scheduler semantics: priorities, round robin, blocking, semaphores,
// GSI-to-semaphore interrupt delivery.
#include <gtest/gtest.h>

#include "src/hv/scheduler.h"
#include "tests/hv/test_util.h"

namespace nova::hv {
namespace {

TEST(RunQueue, PriorityOrder) {
  auto pd = std::shared_ptr<Pd>();
  auto ec = std::make_shared<Ec>(Ec::Kind::kGlobal, pd, 0);
  Sc low(ec, 10, 1000), mid(ec, 100, 1000), high(ec, 200, 1000);
  RunQueue q;
  q.Enqueue(&low);
  q.Enqueue(&high);
  q.Enqueue(&mid);
  EXPECT_EQ(q.TopPriority(), 200);
  EXPECT_EQ(q.Dequeue(), &high);
  EXPECT_EQ(q.Dequeue(), &mid);
  EXPECT_EQ(q.Dequeue(), &low);
  EXPECT_EQ(q.Dequeue(), nullptr);
  EXPECT_TRUE(q.empty());
}

TEST(RunQueue, RoundRobinWithinPriority) {
  auto pd = std::shared_ptr<Pd>();
  auto ec = std::make_shared<Ec>(Ec::Kind::kGlobal, pd, 0);
  Sc a(ec, 50, 1000), b(ec, 50, 1000);
  RunQueue q;
  q.Enqueue(&a);
  q.Enqueue(&b);
  Sc* first = q.Dequeue();
  q.Enqueue(first);  // Tail.
  EXPECT_EQ(q.Dequeue(), &b);
}

TEST(RunQueue, EnqueueAtHeadPreserved) {
  auto pd = std::shared_ptr<Pd>();
  auto ec = std::make_shared<Ec>(Ec::Kind::kGlobal, pd, 0);
  Sc a(ec, 50, 1000), b(ec, 50, 1000);
  RunQueue q;
  q.Enqueue(&a);
  q.Enqueue(&b, /*at_head=*/true);
  EXPECT_EQ(q.Dequeue(), &b);
}

TEST(RunQueue, DoubleEnqueueIgnored) {
  auto pd = std::shared_ptr<Pd>();
  auto ec = std::make_shared<Ec>(Ec::Kind::kGlobal, pd, 0);
  Sc a(ec, 50, 1000);
  RunQueue q;
  q.Enqueue(&a);
  q.Enqueue(&a);
  EXPECT_EQ(q.Dequeue(), &a);
  EXPECT_TRUE(q.empty());
}

TEST(RunQueue, RemoveUnlinks) {
  auto pd = std::shared_ptr<Pd>();
  auto ec = std::make_shared<Ec>(Ec::Kind::kGlobal, pd, 0);
  Sc a(ec, 50, 1000), b(ec, 50, 1000);
  RunQueue q;
  q.Enqueue(&a);
  q.Enqueue(&b);
  (void)q.Remove(&a);
  EXPECT_EQ(q.Dequeue(), &b);
  EXPECT_TRUE(q.empty());
}

class SchedTest : public HvTest {};

TEST_F(SchedTest, HigherPriorityRunsFirst) {
  std::vector<int> order;
  Ec* lo_ec = nullptr;
  Ec* hi_ec = nullptr;
  ASSERT_EQ(hv_.CreateEcGlobal(root_, 100, kSelOwnPd, 0,
                               [&] {
                                 order.push_back(0);
                                 machine_.cpu(0).Charge(100);
                                 lo_ec->set_block_state(Ec::BlockState::kBlockedSm);
                               },
                               &lo_ec),
            Status::kSuccess);
  ASSERT_EQ(hv_.CreateEcGlobal(root_, 101, kSelOwnPd, 0,
                               [&] {
                                 order.push_back(1);
                                 machine_.cpu(0).Charge(100);
                                 hi_ec->set_block_state(Ec::BlockState::kBlockedSm);
                               },
                               &hi_ec),
            Status::kSuccess);
  ASSERT_EQ(hv_.CreateSc(root_, 102, 100, /*prio=*/10, 100000), Status::kSuccess);
  ASSERT_EQ(hv_.CreateSc(root_, 103, 101, /*prio=*/20, 100000), Status::kSuccess);

  hv_.StepOnce();
  hv_.StepOnce();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // High priority first.
  EXPECT_EQ(order[1], 0);
}

TEST_F(SchedTest, SemaphoreBlocksAndWakes) {
  constexpr CapSel kSm = 90;
  ASSERT_EQ(hv_.CreateSm(root_, kSm, 0), Status::kSuccess);
  int runs = 0;
  Ec* waiter = nullptr;
  ASSERT_EQ(hv_.CreateEcGlobal(root_, 100, kSelOwnPd, 0,
                               [&] {
                                 if (hv_.SmDown(waiter, kSm) ==
                                     Hypervisor::DownResult::kBlocked) {
                                   return;
                                 }
                                 ++runs;
                               },
                               &waiter),
            Status::kSuccess);
  ASSERT_EQ(hv_.CreateSc(root_, 101, 100, 10, 100000), Status::kSuccess);

  hv_.StepOnce();  // Blocks on the empty semaphore.
  EXPECT_EQ(runs, 0);
  EXPECT_EQ(waiter->block_state(), Ec::BlockState::kBlockedSm);
  EXPECT_FALSE(hv_.StepOnce());  // Nothing runnable, no events.

  ASSERT_EQ(hv_.SmUp(root_, kSm), Status::kSuccess);
  EXPECT_EQ(waiter->block_state(), Ec::BlockState::kRunnable);
  hv_.StepOnce();
  EXPECT_EQ(runs, 1);
}

TEST_F(SchedTest, SemaphoreCountingSemantics) {
  constexpr CapSel kSm = 90;
  ASSERT_EQ(hv_.CreateSm(root_, kSm, 2), Status::kSuccess);
  Ec* waiter = nullptr;
  ASSERT_EQ(hv_.CreateEcGlobal(root_, 100, kSelOwnPd, 0, [] {}, &waiter),
            Status::kSuccess);
  ASSERT_EQ(hv_.CreateSc(root_, 101, 100, 10, 100000), Status::kSuccess);
  EXPECT_EQ(hv_.SmDown(waiter, kSm), Hypervisor::DownResult::kAcquired);
  EXPECT_EQ(hv_.SmDown(waiter, kSm), Hypervisor::DownResult::kAcquired);
  EXPECT_EQ(hv_.SmDown(waiter, kSm), Hypervisor::DownResult::kBlocked);
}

TEST_F(SchedTest, SemaphoreWaitDeadlineTimesOutAndRerunsCleanly) {
  constexpr CapSel kSm = 90;
  ASSERT_EQ(hv_.CreateSm(root_, kSm, 0), Status::kSuccess);
  std::vector<Hypervisor::DownResult> log;
  Ec* waiter = nullptr;
  ASSERT_EQ(hv_.CreateEcGlobal(root_, 100, kSelOwnPd, 0,
                               [&] {
                                 const auto r =
                                     hv_.SmDown(waiter, kSm, /*unmask_gsi=*/false,
                                                sim::Milliseconds(1));
                                 if (r == Hypervisor::DownResult::kBlocked) {
                                   return;
                                 }
                                 log.push_back(r);
                                 if (r == Hypervisor::DownResult::kTimeout) {
                                   // Retry: the wait must re-enter cleanly.
                                   log.push_back(hv_.SmDown(waiter, kSm));
                                 }
                               },
                               &waiter),
            Status::kSuccess);
  ASSERT_EQ(hv_.CreateSc(root_, 101, 100, 10, 100000), Status::kSuccess);

  hv_.StepOnce();  // Blocks with a 1 ms deadline.
  EXPECT_EQ(waiter->block_state(), Ec::BlockState::kBlockedSm);
  hv_.StepOnce();  // Idle: skips to the deadline event, which expires the wait.
  EXPECT_EQ(waiter->block_state(), Ec::BlockState::kRunnable);

  // The timed-out waiter was removed from the semaphore queue, so this Up
  // finds nobody to wake and banks the count instead. If the waiter had
  // leaked in the queue, the Up would be consumed waking it and the retry
  // below would block rather than acquire.
  ASSERT_EQ(hv_.SmUp(root_, kSm), Status::kSuccess);

  hv_.StepOnce();  // Re-entry reports the timeout; the retry acquires.
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], Hypervisor::DownResult::kTimeout);
  EXPECT_EQ(log[1], Hypervisor::DownResult::kAcquired);
}

TEST_F(SchedTest, GsiDeliveryWakesDriverThread) {
  constexpr CapSel kSm = 90;
  constexpr std::uint32_t kGsi = 7;
  ASSERT_EQ(hv_.CreateSm(root_, kSm, 0), Status::kSuccess);
  ASSERT_EQ(hv_.AssignGsi(root_, kSm, kGsi, 0), Status::kSuccess);

  int handled = 0;
  Ec* driver = nullptr;
  ASSERT_EQ(hv_.CreateEcGlobal(root_, 100, kSelOwnPd, 0,
                               [&] {
                                 if (hv_.SmDown(driver, kSm, /*unmask_gsi=*/true) ==
                                     Hypervisor::DownResult::kBlocked) {
                                   return;
                                 }
                                 ++handled;
                               },
                               &driver),
            Status::kSuccess);
  ASSERT_EQ(hv_.CreateSc(root_, 101, 100, 10, 100000), Status::kSuccess);

  hv_.StepOnce();  // Driver blocks; GSI unmasked by the handshake.
  EXPECT_EQ(handled, 0);

  machine_.irq().Assert(kGsi);
  hv_.StepOnce();  // Kernel masks + acks + ups; driver runs.
  EXPECT_EQ(handled, 1);
  // The GSI was masked by the kernel on delivery: a second edge latches.
  machine_.irq().Assert(kGsi);
  hv_.StepOnce();  // Driver blocks again (and unmasks -> latched edge fires).
  hv_.StepOnce();
  EXPECT_EQ(handled, 2);
}

TEST_F(SchedTest, QuantumDepletionRotatesEqualPriority) {
  std::vector<int> order;
  Ec* a_ec = nullptr;
  Ec* b_ec = nullptr;
  ASSERT_EQ(hv_.CreateEcGlobal(root_, 100, kSelOwnPd, 0,
                               [&] {
                                 order.push_back(0);
                                 machine_.cpu(0).Charge(2000);  // Deplete.
                               },
                               &a_ec),
            Status::kSuccess);
  ASSERT_EQ(hv_.CreateEcGlobal(root_, 101, kSelOwnPd, 0,
                               [&] {
                                 order.push_back(1);
                                 machine_.cpu(0).Charge(2000);
                               },
                               &b_ec),
            Status::kSuccess);
  ASSERT_EQ(hv_.CreateSc(root_, 102, 100, 10, 1000), Status::kSuccess);
  ASSERT_EQ(hv_.CreateSc(root_, 103, 101, 10, 1000), Status::kSuccess);

  for (int i = 0; i < 4; ++i) {
    hv_.StepOnce();
  }
  // Depleted quantum sends each SC to the tail: strict alternation.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1}));
}

TEST_F(SchedTest, IdleSkipsToDeviceEvent) {
  bool fired = false;
  machine_.events().ScheduleAt(sim::Milliseconds(5), [&] { fired = true; });
  EXPECT_TRUE(hv_.StepOnce());  // Nothing runnable: skips to the event.
  EXPECT_TRUE(fired);
  EXPECT_GE(machine_.cpu(0).NowPs(), sim::Milliseconds(5));
  EXPECT_FALSE(hv_.StepOnce());  // Now truly nothing left.
}

}  // namespace
}  // namespace nova::hv
