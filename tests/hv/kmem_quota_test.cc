// Per-PD kernel-memory quotas: donation at CreatePd, charge/credit on
// every object-creation path, exhaustion-safe failure (kNoMem with no
// partial object), donation return on destroy, and deterministic
// alloc-fail fault injection.
#include <gtest/gtest.h>

#include "src/sim/fault.h"
#include "tests/hv/test_util.h"

namespace nova::hv {
namespace {

class KmemQuotaTest : public HvTest {
 protected:
  // The own-PD capability chunk plus the page-table root frame: the
  // minimum any domain consumes just by existing.
  static constexpr std::uint64_t kPdBaseFrames = 2;
};

TEST_F(KmemQuotaTest, RootAccountIsBoundedByTheKernelPool) {
  ASSERT_TRUE(root_->kmem().bounded());
  // One frame of the reserve is the pool's base offset (frame 0 is never
  // handed out); everything else is donatable.
  EXPECT_EQ(root_->kmem().limit(), hv_.kernel_reserve() / hw::kPageSize - 1);
  // Boot itself charged the root's table frame and first cap chunk.
  EXPECT_GE(root_->kmem().used(), kPdBaseFrames);
  EXPECT_LT(root_->kmem().used(), root_->kmem().limit());
}

TEST_F(KmemQuotaTest, ZeroQuotaCreatePdFailsWithNoPartialObject) {
  const std::uint64_t frames_before = hv_.FramesInUse();
  const std::uint64_t root_used = root_->kmem().used();
  const std::uint64_t root_limit = root_->kmem().limit();

  const CapSel sel = Free(root_);
  Pd* out = nullptr;
  EXPECT_EQ(hv_.CreatePd(root_, sel, "starved", false, &out, /*quota_frames=*/0),
            Status::kNoMem);
  EXPECT_EQ(out, nullptr);
  // No half-visible domain: the destination slot is empty and every frame
  // (pool and accounting) went back.
  EXPECT_EQ(root_->caps().LookupRef(sel), nullptr);
  EXPECT_EQ(hv_.FramesInUse(), frames_before);
  EXPECT_EQ(root_->kmem().used(), root_used);
  EXPECT_EQ(root_->kmem().limit(), root_limit);
}

TEST_F(KmemQuotaTest, QuotaLargerThanDonorAvailableIsRejected) {
  const std::uint64_t root_limit = root_->kmem().limit();
  const CapSel sel = Free(root_);
  EXPECT_EQ(hv_.CreatePd(root_, sel, "greedy", false, nullptr,
                         root_->kmem().available() + 1),
            Status::kNoMem);
  EXPECT_EQ(root_->caps().LookupRef(sel), nullptr);
  EXPECT_EQ(root_->kmem().limit(), root_limit);
}

TEST_F(KmemQuotaTest, DonationRoundTripsThroughDestroy) {
  const std::uint64_t frames_before = hv_.FramesInUse();
  const std::uint64_t root_limit = root_->kmem().limit();
  constexpr std::uint64_t kQuota = 16;

  const CapSel sel = Free(root_);
  Pd* child = nullptr;
  ASSERT_EQ(hv_.CreatePd(root_, sel, "child", false, &child, kQuota),
            Status::kSuccess);
  ASSERT_NE(child, nullptr);
  // The quota was carved out of the root's limit, and the child has
  // already paid for its own existence out of it.
  EXPECT_EQ(root_->kmem().limit(), root_limit - kQuota);
  EXPECT_TRUE(child->kmem().bounded());
  EXPECT_EQ(child->kmem().limit(), kQuota);
  EXPECT_EQ(child->kmem().used(), kPdBaseFrames);

  ASSERT_EQ(hv_.DestroyPd(root_, sel), Status::kSuccess);
  // Destruction returns the full donation and every pool frame.
  EXPECT_EQ(root_->kmem().limit(), root_limit);
  EXPECT_EQ(hv_.FramesInUse(), frames_before);
}

TEST_F(KmemQuotaTest, ObjectCreationUnderExhaustedQuotaFailsCleanly) {
  // Exactly enough for the domain itself: every subsequent object charge
  // must fail with kNoMem and leave no partial object behind.
  const CapSel pd_sel = Free(root_);
  Pd* child = nullptr;
  ASSERT_EQ(hv_.CreatePd(root_, pd_sel, "pinched", false, &child, kPdBaseFrames),
            Status::kSuccess);
  ASSERT_EQ(child->kmem().available(), 0u);
  const std::uint64_t frames_before = hv_.FramesInUse();

  const CapSel ec_sel = Free(root_);
  Ec* ec = nullptr;
  EXPECT_EQ(hv_.CreateEcLocal(root_, ec_sel, pd_sel, 0, [](std::uint64_t) {}, &ec),
            Status::kNoMem);
  EXPECT_EQ(ec, nullptr);
  EXPECT_EQ(root_->caps().LookupRef(ec_sel), nullptr);

  // Sm charges the *caller's* own domain.
  const CapSel sm_sel = child->caps().FindFree(kSelFirstFree);
  EXPECT_EQ(hv_.CreateSm(child, sm_sel, 0), Status::kNoMem);
  EXPECT_EQ(child->caps().LookupRef(sm_sel), nullptr);

  EXPECT_EQ(child->kmem().used(), kPdBaseFrames);
  EXPECT_EQ(hv_.FramesInUse(), frames_before);
}

TEST_F(KmemQuotaTest, ScCreationExhaustingQuotaFailsWithoutAttaching) {
  // Room for the domain plus one EC, but not for the EC's scheduling
  // context.
  const CapSel pd_sel = Free(root_);
  Pd* child = nullptr;
  ASSERT_EQ(
      hv_.CreatePd(root_, pd_sel, "pinched-sc", false, &child, kPdBaseFrames + 1),
      Status::kSuccess);

  const CapSel ec_sel = Free(root_);
  Ec* ec = nullptr;
  ASSERT_EQ(hv_.CreateEcGlobal(root_, ec_sel, pd_sel, 0, nullptr, &ec),
            Status::kSuccess);
  ASSERT_EQ(child->kmem().available(), 0u);

  const CapSel sc_sel = Free(root_);
  EXPECT_EQ(hv_.CreateSc(root_, sc_sel, ec_sel, 1, 1'000'000), Status::kNoMem);
  EXPECT_EQ(root_->caps().LookupRef(sc_sel), nullptr);
  EXPECT_EQ(ec->sc(), nullptr);
  EXPECT_EQ(child->kmem().used(), kPdBaseFrames + 1);
}

TEST_F(KmemQuotaTest, ObjectChargesAreCreditedOnDestroy) {
  const std::uint64_t frames_before = hv_.FramesInUse();
  const std::uint64_t root_limit = root_->kmem().limit();

  const CapSel pd_sel = Free(root_);
  Pd* child = nullptr;
  ASSERT_EQ(hv_.CreatePd(root_, pd_sel, "full", false, &child, 8), Status::kSuccess);
  const CapSel ec_sel = Free(root_);
  ASSERT_EQ(hv_.CreateEcGlobal(root_, ec_sel, pd_sel, 0, nullptr), Status::kSuccess);
  const CapSel sm_sel = child->caps().FindFree(kSelFirstFree);
  ASSERT_EQ(hv_.CreateSm(child, sm_sel, 0), Status::kSuccess);
  EXPECT_EQ(child->kmem().used(), kPdBaseFrames + 2);

  ASSERT_EQ(hv_.DestroyPd(root_, pd_sel), Status::kSuccess);
  EXPECT_EQ(root_->kmem().limit(), root_limit);
  EXPECT_EQ(hv_.FramesInUse(), frames_before);
}

TEST_F(KmemQuotaTest, PassThroughChildChargesTheBoundedAncestor) {
  // child (bounded 8) -> grandchild (pass-through): the grandchild's
  // consumption lands on the child's account.
  const CapSel child_sel = Free(root_);
  Pd* child = nullptr;
  ASSERT_EQ(hv_.CreatePd(root_, child_sel, "parent", false, &child, 8),
            Status::kSuccess);
  const std::uint64_t child_used = child->kmem().used();

  const CapSel gc_sel = child->caps().FindFree(kSelFirstFree);
  Pd* grandchild = nullptr;
  ASSERT_EQ(hv_.CreatePd(child, gc_sel, "leaf", false, &grandchild),
            Status::kSuccess);
  EXPECT_FALSE(grandchild->kmem().bounded());
  EXPECT_EQ(grandchild->kmem().used(), kPdBaseFrames);
  EXPECT_EQ(child->kmem().used(), child_used + kPdBaseFrames);

  // Exhaust the ancestor through the pass-through child: object creation
  // in the grandchild fails once the *ancestor* runs dry.
  while (child->kmem().available() > 0) {
    const CapSel sm = child->caps().FindFree(kSelFirstFree);
    ASSERT_EQ(hv_.CreateSm(child, sm, 0), Status::kSuccess);
  }
  const CapSel gc_sm = grandchild->caps().FindFree(kSelFirstFree);
  EXPECT_EQ(hv_.CreateSm(grandchild, gc_sm, 0), Status::kNoMem);
}

TEST_F(KmemQuotaTest, AllocFailFaultPlanFailsCreationTransiently) {
  sim::FaultPlan plan(/*seed=*/5);
  plan.Schedule({.at = 0,
                 .kind = sim::FaultKind::kAllocFail,
                 .target = "victim",
                 .count = 1,
                 .rate = 1.0});
  plan.Arm(&machine_.events());
  hv_.SetFaultPlan(&plan);

  const std::uint64_t frames_before = hv_.FramesInUse();
  const CapSel sel = Free(root_);
  // First attempt hits the armed alloc-fail fault and fails cleanly...
  EXPECT_EQ(hv_.CreatePd(root_, sel, "victim", false), Status::kNoMem);
  EXPECT_EQ(root_->caps().LookupRef(sel), nullptr);
  EXPECT_EQ(hv_.FramesInUse(), frames_before);
  EXPECT_EQ(plan.injected(sim::FaultKind::kAllocFail), 1u);
  // ...the budget is spent, so the retry succeeds: the fault is transient.
  EXPECT_EQ(hv_.CreatePd(root_, sel, "victim", false), Status::kSuccess);
  // Other domains were never at risk: the fault matched by target name.
  const CapSel other = Free(root_);
  EXPECT_EQ(hv_.CreatePd(root_, other, "bystander", false), Status::kSuccess);
}

}  // namespace
}  // namespace nova::hv
