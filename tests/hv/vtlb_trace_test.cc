// Trace-sequence assertions for the §8.4 vTLB optimization ladder: the
// structured trace must show the expected *ordering* of fill/flush/context
// events per rung — naive flushes on every MOV CR3, the context cache
// emits zero full-flush events on guest context switches, and VPID leaves
// the shadow-event sequence untouched (it only spares the hardware TLB).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/guest/guest_pt.h"
#include "src/hw/isa.h"
#include "src/sim/trace.h"
#include "tests/hv/test_util.h"

namespace nova::hv {
namespace {

class VtlbTraceTest : public HvTest {
 protected:
  static constexpr CapSel kVmPd = 100;
  static constexpr CapSel kVcpuSel = 101;
  static constexpr CapSel kScSel = 102;
  static constexpr CapSel kEvtBase = 200;
  static constexpr CapSel kHandlerBase = 300;
  static constexpr CapSel kPortalBase = 320;

  static constexpr std::uint64_t kRootA = 0x100000;
  static constexpr std::uint64_t kRootB = 0x108000;
  static constexpr std::uint64_t kGuestPtPool = 0x110000;

  explicit VtlbTraceTest(const hw::CpuModel* cpu = &hw::CoreDuoT2500())
      : HvTest(hw::MachineConfig{.cpus = {cpu}, .ram_size = 512ull << 20}) {
    EXPECT_EQ(hv_.CreatePd(root_, kVmPd, "vm", true, &vm_), Status::kSuccess);
    guest_base_page_ = hv_.kernel_reserve() >> hw::kPageShift;
    EXPECT_EQ(hv_.Delegate(root_, kVmPd,
                           Crd{CrdKind::kMem, guest_base_page_, 13, perm::kRwx}, 0),
              Status::kSuccess);
    EXPECT_EQ(hv_.CreateVcpu(root_, kVcpuSel, kVmPd, 0, kEvtBase, &vcpu_),
              Status::kSuccess);
    hw::VmControls& ctl = vcpu_->ctl();
    ctl.mode = hw::TranslationMode::kShadow;
    ctl.nested_root = 0;
    ctl.intercept_cr3 = true;
    ctl.intercept_invlpg = true;
    gpt_ = std::make_unique<guest::GuestPageTableBuilder>(
        &machine_.mem(), [this](std::uint64_t gpa) { return GuestHpa(gpa); },
        kGuestPtPool);
  }

  hw::PhysAddr GuestHpa(std::uint64_t gpa) {
    return (guest_base_page_ << hw::kPageShift) + gpa;
  }

  void GuestMap(std::uint64_t root_gpa, std::uint64_t gva, std::uint64_t gpa) {
    ASSERT_EQ(gpt_->Map(root_gpa, gva, gpa, hw::kPageSize, hw::pte::kWritable),
              Status::kSuccess);
  }

  void BuildTwoAddressSpaces() {
    GuestMap(kRootA, 0x1000, 0x1000);
    GuestMap(kRootA, 0x400000, 0x200000);
    GuestMap(kRootB, 0x1000, 0x1000);
    GuestMap(kRootB, 0x400000, 0x300000);
  }

  // A -> B -> A -> B with one store per visit: three MOV CR3 context
  // switches, two of them revisits.
  void InstallSwitchProgram() {
    hw::isa::Assembler as(0x1000);
    as.MovImm(0, 0xaaa);
    as.StoreAbs(0, 0x400000);
    as.MovCr3Imm(kRootB);
    as.MovImm(0, 0xbbb);
    as.StoreAbs(0, 0x400000);
    as.MovCr3Imm(kRootA);
    as.MovImm(0, 0xccc);
    as.StoreAbs(0, 0x400000);
    as.MovCr3Imm(kRootB);
    as.MovImm(0, 0xddd);
    as.StoreAbs(0, 0x400000);
    as.Hlt();
    (void)machine_.mem().Write(GuestHpa(as.base()), as.bytes().data(),
                         as.bytes().size());
    vcpu_->gstate().rip = 0x1000;
    vcpu_->gstate().cr3 = kRootA;
    vcpu_->gstate().paging = true;
  }

  void InstallHltPortal() {
    const auto idx = static_cast<CapSel>(Event::kHlt);
    Ec* handler = nullptr;
    ASSERT_EQ(hv_.CreateEcLocal(
                  root_, kHandlerBase + idx, kSelOwnPd, 0,
                  [this, idx](std::uint64_t) {
                    handlers_[idx]->utcb().arch.halted = true;
                  },
                  &handler),
              Status::kSuccess);
    handlers_[idx] = handler;
    ASSERT_EQ(hv_.CreatePt(root_, kPortalBase + idx, kHandlerBase + idx,
                           mtd::kSta, static_cast<std::uint64_t>(Event::kHlt)),
              Status::kSuccess);
    ASSERT_EQ(hv_.Delegate(root_, kVmPd,
                           Crd::Obj(kPortalBase + idx, 0, perm::kCall),
                           kEvtBase + idx),
              Status::kSuccess);
  }

  void StartAndRun(int steps = 40) {
    machine_.tracer().set_enabled(true);
    ASSERT_EQ(hv_.CreateSc(root_, kScSel, kVcpuSel, 1, 30'000'000),
              Status::kSuccess);
    for (int i = 0; i < steps && hv_.StepOnce(); ++i) {
    }
    machine_.tracer().set_enabled(false);
  }

  // Emission-order name sequence of the retained trace window, restricted
  // to the names of interest.
  std::vector<std::string> EventNames(const std::vector<std::string>& filter) {
    const sim::Tracer& t = machine_.tracer();
    std::vector<std::string> out;
    for (std::size_t i = 0; i < t.size(); ++i) {
      const sim::TraceRecord& r = t.at(i);
      if (r.type != static_cast<std::uint8_t>(sim::TraceType::kInstant)) {
        continue;
      }
      const std::string& name = t.Name(r.name);
      for (const std::string& want : filter) {
        if (name == want) {
          out.push_back(name);
          break;
        }
      }
    }
    return out;
  }

  static std::uint64_t CountOf(const std::vector<std::string>& seq,
                               const std::string& name) {
    std::uint64_t n = 0;
    for (const std::string& s : seq) n += s == name ? 1 : 0;
    return n;
  }

  Pd* vm_ = nullptr;
  Ec* vcpu_ = nullptr;
  std::uint64_t guest_base_page_ = 0;
  std::unique_ptr<guest::GuestPageTableBuilder> gpt_;
  Ec* handlers_[kNumEvents] = {};
};

const std::vector<std::string> kLadderNames = {
    "CR Read/Write",     "vTLB Flush",       "vTLB Fill",
    "vTLB Context Hit",  "vTLB Context Miss"};

// Core i7 variant for the VPID rung.
class VtlbTraceVpidTest : public VtlbTraceTest {
 protected:
  VtlbTraceVpidTest() : VtlbTraceTest(&hw::CoreI7_920()) {}
};

TEST_F(VtlbTraceTest, NaiveRungFlushesAfterEveryContextSwitch) {
  BuildTwoAddressSpaces();
  InstallSwitchProgram();
  InstallHltPortal();
  StartAndRun();

  const std::vector<std::string> seq = EventNames(kLadderNames);
  EXPECT_EQ(CountOf(seq, "vTLB Flush"), 3u);
  EXPECT_EQ(CountOf(seq, "vTLB Fill"), 8u);
  EXPECT_EQ(CountOf(seq, "CR Read/Write"), 3u);
  EXPECT_EQ(CountOf(seq, "vTLB Context Hit"), 0u);
  EXPECT_EQ(CountOf(seq, "vTLB Context Miss"), 0u);

  // Ordering: the i-th flush trails the i-th MOV CR3 — the naive rung
  // tears the shadow tree down as a consequence of each switch.
  std::vector<std::size_t> movs;
  std::vector<std::size_t> flushes;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (seq[i] == "CR Read/Write") movs.push_back(i);
    if (seq[i] == "vTLB Flush") flushes.push_back(i);
  }
  ASSERT_EQ(movs.size(), flushes.size());
  for (std::size_t i = 0; i < movs.size(); ++i) {
    EXPECT_GT(flushes[i], movs[i]) << "flush " << i << " before its MOV CR3";
  }
}

TEST_F(VtlbTraceTest, CachedRungEmitsNoFlushOnContextSwitch) {
  hv_.set_vtlb_policy(VtlbPolicy{.cache_contexts = true});
  BuildTwoAddressSpaces();
  InstallSwitchProgram();
  InstallHltPortal();
  StartAndRun();

  const std::vector<std::string> seq = EventNames(kLadderNames);
  // The headline §8.4 property: zero full-flush events on guest context
  // switches once contexts are cached.
  EXPECT_EQ(CountOf(seq, "vTLB Flush"), 0u);
  EXPECT_EQ(CountOf(seq, "vTLB Fill"), 4u);
  EXPECT_EQ(CountOf(seq, "vTLB Context Miss"), 1u);  // First sight of B.
  EXPECT_EQ(CountOf(seq, "vTLB Context Hit"), 2u);   // Both revisits.

  // Ordering: the compulsory miss precedes every hit, and no fill happens
  // after the last context switch (both spaces fully shadowed by then).
  std::size_t first_hit = seq.size();
  std::size_t miss_pos = seq.size();
  std::size_t last_fill = 0;
  std::size_t last_switch = 0;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (seq[i] == "vTLB Context Hit" && first_hit == seq.size()) first_hit = i;
    if (seq[i] == "vTLB Context Miss") miss_pos = i;
    if (seq[i] == "vTLB Fill") last_fill = i;
    if (seq[i] == "vTLB Context Hit" || seq[i] == "vTLB Context Miss") {
      last_switch = i;
    }
  }
  EXPECT_LT(miss_pos, first_hit);
  EXPECT_LT(last_fill, last_switch)
      << "a revisit refilled pages the cache should have kept";
}

TEST_F(VtlbTraceVpidTest, VpidRungKeepsShadowEventSequenceOfCachedRung) {
  hv_.set_vtlb_policy(VtlbPolicy{.cache_contexts = true, .use_vpid = true});
  BuildTwoAddressSpaces();
  InstallSwitchProgram();
  InstallHltPortal();
  StartAndRun();

  // VPID only spares the hardware TLB across world switches; the shadow
  // event stream must be exactly the cached rung's.
  const std::vector<std::string> seq = EventNames(kLadderNames);
  EXPECT_EQ(CountOf(seq, "vTLB Flush"), 0u);
  EXPECT_EQ(CountOf(seq, "vTLB Fill"), 4u);
  EXPECT_EQ(CountOf(seq, "vTLB Context Miss"), 1u);
  EXPECT_EQ(CountOf(seq, "vTLB Context Hit"), 2u);
}

}  // namespace
}  // namespace nova::hv
