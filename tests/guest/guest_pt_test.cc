#include "src/guest/guest_pt.h"

#include <gtest/gtest.h>

#include "src/hw/phys_mem.h"

namespace nova::guest {
namespace {

class GuestPtTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kBase = 32ull << 20;  // GPA 0 == HPA 32M.

  GuestPtTest()
      : mem_(128ull << 20),
        gpt_(&mem_, [](std::uint64_t gpa) { return kBase + gpa; }, 0x110000) {}

  // Walk the built table the way the hardware walker would.
  hw::WalkResult Walk(std::uint64_t gva, bool write = false) {
    // Guest tables hold GPAs; translate the root for the host-side walker
    // and verify entries manually (two-level walk with GPA arithmetic).
    const std::uint32_t pde = mem_.Read32(kBase + 0x100000 + ((gva >> 22) & 0x3ff) * 4);
    hw::WalkResult r;
    if (!(pde & hw::pte::kPresent)) {
      r.status = Status::kMemoryFault;
      return r;
    }
    if (pde & hw::pte::kLarge) {
      r.pa = (pde & hw::pte::kAddrMask & ~((4ull << 20) - 1)) | (gva & ((4ull << 20) - 1));
      r.page_size = 4ull << 20;
      r.pte = pde;
      return r;
    }
    const std::uint64_t pt_gpa = pde & hw::pte::kAddrMask;
    const std::uint32_t pte = mem_.Read32(kBase + pt_gpa + ((gva >> 12) & 0x3ff) * 4);
    if (!(pte & hw::pte::kPresent) || (write && !(pte & hw::pte::kWritable))) {
      r.status = Status::kMemoryFault;
      return r;
    }
    r.pa = (pte & hw::pte::kAddrMask) | (gva & hw::kPageMask);
    r.page_size = hw::kPageSize;
    r.pte = pte;
    return r;
  }

  hw::PhysMem mem_;
  GuestPageTableBuilder gpt_;
};

TEST_F(GuestPtTest, MapsSmallPages) {
  ASSERT_EQ(gpt_.Map(0x100000, 0x400000, 0x200000, hw::kPageSize,
                     hw::pte::kWritable),
            Status::kSuccess);
  const hw::WalkResult r = Walk(0x400123);
  ASSERT_EQ(r.status, Status::kSuccess);
  EXPECT_EQ(r.pa, 0x200123u);
}

TEST_F(GuestPtTest, IntermediateEntriesAreGuestPhysical) {
  ASSERT_EQ(gpt_.Map(0x100000, 0x400000, 0x200000, hw::kPageSize,
                     hw::pte::kWritable),
            Status::kSuccess);
  const std::uint32_t pde = mem_.Read32(kBase + 0x100000 + 1 * 4);
  // The page-table frame came from the pool and is addressed as a GPA,
  // below the guest's memory size — NOT a host-physical address.
  EXPECT_LT(pde & hw::pte::kAddrMask, 32ull << 20);
  EXPECT_GE(pde & hw::pte::kAddrMask, 0x110000u);
}

TEST_F(GuestPtTest, MapsLargePages) {
  ASSERT_EQ(gpt_.Map(0x100000, 8ull << 22, 4ull << 22, 4ull << 20,
                     hw::pte::kWritable | hw::pte::kGlobal),
            Status::kSuccess);
  const hw::WalkResult r = Walk((8ull << 22) + 0x1234);
  ASSERT_EQ(r.status, Status::kSuccess);
  EXPECT_EQ(r.pa, (4ull << 22) + 0x1234);
  EXPECT_EQ(r.page_size, 4ull << 20);
  EXPECT_TRUE(r.pte & hw::pte::kGlobal);
}

TEST_F(GuestPtTest, MisalignedMappingRejected) {
  EXPECT_EQ(gpt_.Map(0x100000, 0x1234, 0x2000, hw::kPageSize, 0),
            Status::kBadParameter);
  EXPECT_EQ(gpt_.Map(0x100000, 4ull << 20, 0x1000, 4ull << 20, 0),
            Status::kBadParameter);
  EXPECT_EQ(gpt_.Map(0x100000, 0, 0, 8192, 0), Status::kBadParameter);
}

TEST_F(GuestPtTest, SmallUnderLargeRejected) {
  ASSERT_EQ(gpt_.Map(0x100000, 0, 0, 4ull << 20, hw::pte::kWritable),
            Status::kSuccess);
  EXPECT_EQ(gpt_.Map(0x100000, 0x1000, 0x1000, hw::kPageSize, 0), Status::kBusy);
}

TEST_F(GuestPtTest, UnmapSmallAndLarge) {
  (void)gpt_.Map(0x100000, 0x400000, 0x200000, hw::kPageSize, hw::pte::kWritable);
  (void)gpt_.Map(0x100000, 8ull << 22, 4ull << 22, 4ull << 20, hw::pte::kWritable);
  EXPECT_EQ(gpt_.Unmap(0x100000, 0x400000), Status::kSuccess);
  EXPECT_EQ(Walk(0x400000).status, Status::kMemoryFault);
  EXPECT_EQ(gpt_.Unmap(0x100000, 8ull << 22), Status::kSuccess);
  EXPECT_EQ(Walk(8ull << 22).status, Status::kMemoryFault);
  EXPECT_EQ(gpt_.Unmap(0x100000, 0x999000), Status::kSuccess);  // Idempotent.
}

TEST_F(GuestPtTest, LeafEntryGpaLocatesPte) {
  (void)gpt_.Map(0x100000, 0x400000, 0x200000, hw::kPageSize, hw::pte::kWritable);
  const std::uint64_t pte_gpa = gpt_.LeafEntryGpa(0x100000, 0x400000);
  ASSERT_NE(pte_gpa, 0u);
  const std::uint32_t pte = mem_.Read32(kBase + pte_gpa);
  EXPECT_EQ(pte & hw::pte::kAddrMask, 0x200000u);
  EXPECT_EQ(gpt_.LeafEntryGpa(0x100000, 0x9990000), 0u);  // Unmapped.
}

TEST_F(GuestPtTest, SeparateRootsAreIndependent) {
  (void)gpt_.Map(0x100000, 0x400000, 0x200000, hw::kPageSize, hw::pte::kWritable);
  (void)gpt_.Map(0x108000, 0x400000, 0x300000, hw::kPageSize, hw::pte::kWritable);
  EXPECT_EQ(Walk(0x400000).pa, 0x200000u);
  // Manually walk the second root.
  const std::uint32_t pde2 = mem_.Read32(kBase + 0x108000 + 1 * 4);
  const std::uint64_t pt2 = pde2 & hw::pte::kAddrMask;
  const std::uint32_t pte2 = mem_.Read32(kBase + pt2);
  EXPECT_EQ(pte2 & hw::pte::kAddrMask, 0x300000u);
}

}  // namespace
}  // namespace nova::guest
