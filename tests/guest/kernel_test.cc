// The synthetic guest kernel, executed bare-metal: boot, IDT setup, timer
// ISR with the controller handshake, demand paging via the #PF handler,
// address-space creation with a shared global kernel map.
#include "src/guest/kernel.h"

#include <gtest/gtest.h>

#include "src/guest/bare_metal.h"
#include "src/hw/machine.h"
#include "src/root/platform.h"

namespace nova::guest {
namespace {

class GuestKernelTest : public ::testing::Test {
 protected:
  GuestKernelTest()
      : machine_(hw::MachineConfig{.cpus = {&hw::CoreI7_920()},
                                   .ram_size = 256ull << 20,
                                   .iommu_present = false}),
        runner_(&machine_) {
    // Host devices (the guest's timer lives on ports 0x40-0x43).
    root::SetupStandardPlatform(&machine_, nullptr);
  }

  std::unique_ptr<GuestKernel> MakeKernel(GuestKernelConfig config) {
    return std::make_unique<GuestKernel>(
        &machine_.mem(), [](std::uint64_t gpa) { return gpa; }, &runner_.mux(),
        config);
  }

  void Boot(GuestKernel& gk, std::uint64_t main_gva) {
    gk.EmitBoot(main_gva);
    gk.Install();
    gk.PrimeState(runner_.gs());
  }

  hw::Machine machine_;
  BareMetalRunner runner_;
};

TEST_F(GuestKernelTest, BootRunsWithPagingEnabled) {
  auto gk = MakeKernel({.mem_bytes = 64ull << 20});
  gk->BuildStandardHandlers();
  hw::isa::Assembler& as = gk->text();
  const std::uint64_t main = as.Here();
  as.MovImm(1, 0xfeed);
  as.StoreAbs(1, 0x600000);  // Through the kernel identity map.
  gk->EmitIdleLoop();
  Boot(*gk, main);

  ASSERT_TRUE(runner_.RunUntil(
      [&] { return machine_.mem().Read64(0x600000) == 0xfeed; },
      sim::Milliseconds(10)));
  EXPECT_TRUE(runner_.gs().paging);
  EXPECT_EQ(runner_.gs().cr3, GuestLayout::kPtRoot);
}

TEST_F(GuestKernelTest, DemandPagingMapsProcessPages) {
  auto gk = MakeKernel({.mem_bytes = 64ull << 20});
  gk->BuildStandardHandlers();
  const std::uint64_t proc_cr3 = gk->CreateAddressSpace();
  ASSERT_NE(proc_cr3, 0u);

  hw::isa::Assembler& as = gk->text();
  const std::uint64_t main = as.Here();
  as.MovCr3Imm(proc_cr3);
  as.MovImm(1, 0x1111);
  as.StoreAbs(1, GuestLayout::kProcVirtBase + 0x5000);  // Faults, gets mapped.
  as.LoadAbs(2, GuestLayout::kProcVirtBase + 0x5000);   // Now hits.
  as.StoreAbs(2, 0x600000);
  gk->EmitIdleLoop();
  Boot(*gk, main);

  ASSERT_TRUE(runner_.RunUntil(
      [&] { return machine_.mem().Read64(0x600000) == 0x1111; },
      sim::Milliseconds(10)));
}

TEST_F(GuestKernelTest, TimerIsrCountsTicksWithHandshake) {
  auto gk = MakeKernel({.mem_bytes = 64ull << 20, .timer_hz = 1000});
  machine_.irq().Configure(0, 0, 32);  // Host timer GSI -> vector 32.
  machine_.irq().Unmask(0);
  int hook_calls = 0;
  gk->set_timer_hook([&] { ++hook_calls; });
  gk->BuildStandardHandlers();
  const std::uint64_t main = gk->EmitIdleLoop();
  Boot(*gk, main);

  runner_.RunUntil([&] { return gk->ticks() >= 10; }, sim::Milliseconds(50));
  EXPECT_GE(gk->ticks(), 10u);
  EXPECT_GE(hook_calls, 10);
}

TEST_F(GuestKernelTest, AddressSpacesShareGlobalKernelMap) {
  auto gk = MakeKernel({.mem_bytes = 64ull << 20});
  gk->BuildStandardHandlers();
  const std::uint64_t as1 = gk->CreateAddressSpace();
  const std::uint64_t as2 = gk->CreateAddressSpace();
  ASSERT_NE(as1, as2);

  hw::isa::Assembler& as = gk->text();
  const std::uint64_t main = as.Here();
  // Write through AS1's kernel map, read back through AS2's: same memory.
  as.MovCr3Imm(as1);
  as.MovImm(1, 0x77);
  as.StoreAbs(1, 0x700000);
  as.MovCr3Imm(as2);
  as.LoadAbs(2, 0x700000);
  as.StoreAbs(2, 0x701000);
  gk->EmitIdleLoop();
  Boot(*gk, main);

  ASSERT_TRUE(runner_.RunUntil(
      [&] { return machine_.mem().Read64(0x701000) == 0x77; },
      sim::Milliseconds(10)));
}

TEST_F(GuestKernelTest, ProcessPagesIsolatedPerAddressSpace) {
  auto gk = MakeKernel({.mem_bytes = 64ull << 20});
  gk->BuildStandardHandlers();
  const std::uint64_t as1 = gk->CreateAddressSpace();
  const std::uint64_t as2 = gk->CreateAddressSpace();

  hw::isa::Assembler& as = gk->text();
  const std::uint64_t main = as.Here();
  const std::uint64_t va = GuestLayout::kProcVirtBase;
  as.MovCr3Imm(as1);
  as.MovImm(1, 0xaaaa);
  as.StoreAbs(1, va);  // Demand-maps a frame in AS1.
  as.MovCr3Imm(as2);
  as.MovImm(1, 0xbbbb);
  as.StoreAbs(1, va);  // Demand-maps a *different* frame in AS2.
  as.MovCr3Imm(as1);
  as.LoadAbs(2, va);   // Must still see AS1's value.
  as.StoreAbs(2, 0x702000);
  gk->EmitIdleLoop();
  Boot(*gk, main);

  ASSERT_TRUE(runner_.RunUntil(
      [&] { return machine_.mem().Read64(0x702000) != 0; },
      sim::Milliseconds(10)));
  EXPECT_EQ(machine_.mem().Read64(0x702000), 0xaaaau);
}

TEST_F(GuestKernelTest, LargeKernelPagesReduceTableSize) {
  auto small = MakeKernel({.mem_bytes = 64ull << 20, .large_kernel_pages = false});
  auto large = MakeKernel({.mem_bytes = 64ull << 20, .large_kernel_pages = true});
  small->Install();
  const std::uint64_t small_pool = small->pt().pool_next();
  large->Install();
  const std::uint64_t large_pool = large->pt().pool_next();
  // 4 KiB identity map needs page-table frames; the 4 MiB map needs none.
  EXPECT_GT(small_pool, GuestLayout::kPtPool);
  EXPECT_EQ(large_pool, GuestLayout::kPtPool);
}

TEST_F(GuestKernelTest, FrameAllocatorExhaustsGracefully) {
  auto gk = MakeKernel({.mem_bytes = 17ull << 20});  // Tiny guest.
  // Heap starts at 16 MiB; only 1 MiB of frames available.
  EXPECT_NE(gk->AllocFrames(200), 0u);
  EXPECT_EQ(gk->AllocFrames(100000), 0u);
}

}  // namespace
}  // namespace nova::guest
