file(REMOVE_RECURSE
  "CMakeFiles/fig7_network.dir/fig7_network.cc.o"
  "CMakeFiles/fig7_network.dir/fig7_network.cc.o.d"
  "fig7_network"
  "fig7_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
