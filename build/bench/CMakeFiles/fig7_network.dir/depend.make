# Empty dependencies file for fig7_network.
# This may be replaced when dependencies are built.
