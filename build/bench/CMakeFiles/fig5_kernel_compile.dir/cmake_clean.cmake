file(REMOVE_RECURSE
  "CMakeFiles/fig5_kernel_compile.dir/fig5_kernel_compile.cc.o"
  "CMakeFiles/fig5_kernel_compile.dir/fig5_kernel_compile.cc.o.d"
  "fig5_kernel_compile"
  "fig5_kernel_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_kernel_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
