# Empty compiler generated dependencies file for fig5_kernel_compile.
# This may be replaced when dependencies are built.
