# Empty dependencies file for fig1_tcb.
# This may be replaced when dependencies are built.
