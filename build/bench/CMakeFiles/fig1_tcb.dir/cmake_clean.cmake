file(REMOVE_RECURSE
  "CMakeFiles/fig1_tcb.dir/fig1_tcb.cc.o"
  "CMakeFiles/fig1_tcb.dir/fig1_tcb.cc.o.d"
  "fig1_tcb"
  "fig1_tcb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_tcb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
