# Empty dependencies file for fig9_vtlb.
# This may be replaced when dependencies are built.
