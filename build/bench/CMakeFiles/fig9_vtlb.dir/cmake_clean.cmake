file(REMOVE_RECURSE
  "CMakeFiles/fig9_vtlb.dir/fig9_vtlb.cc.o"
  "CMakeFiles/fig9_vtlb.dir/fig9_vtlb.cc.o.d"
  "fig9_vtlb"
  "fig9_vtlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_vtlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
