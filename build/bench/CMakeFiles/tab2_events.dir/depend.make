# Empty dependencies file for tab2_events.
# This may be replaced when dependencies are built.
