file(REMOVE_RECURSE
  "CMakeFiles/tab2_events.dir/tab2_events.cc.o"
  "CMakeFiles/tab2_events.dir/tab2_events.cc.o.d"
  "tab2_events"
  "tab2_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
