file(REMOVE_RECURSE
  "CMakeFiles/ext_paravirt.dir/ext_paravirt.cc.o"
  "CMakeFiles/ext_paravirt.dir/ext_paravirt.cc.o.d"
  "ext_paravirt"
  "ext_paravirt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_paravirt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
