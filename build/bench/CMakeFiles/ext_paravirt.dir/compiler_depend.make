# Empty compiler generated dependencies file for ext_paravirt.
# This may be replaced when dependencies are built.
