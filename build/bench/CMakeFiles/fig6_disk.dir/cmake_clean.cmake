file(REMOVE_RECURSE
  "CMakeFiles/fig6_disk.dir/fig6_disk.cc.o"
  "CMakeFiles/fig6_disk.dir/fig6_disk.cc.o.d"
  "fig6_disk"
  "fig6_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
