# Empty dependencies file for fig6_disk.
# This may be replaced when dependencies are built.
