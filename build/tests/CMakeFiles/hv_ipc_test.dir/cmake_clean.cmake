file(REMOVE_RECURSE
  "CMakeFiles/hv_ipc_test.dir/hv/ipc_test.cc.o"
  "CMakeFiles/hv_ipc_test.dir/hv/ipc_test.cc.o.d"
  "hv_ipc_test"
  "hv_ipc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_ipc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
