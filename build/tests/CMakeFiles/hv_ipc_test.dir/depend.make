# Empty dependencies file for hv_ipc_test.
# This may be replaced when dependencies are built.
