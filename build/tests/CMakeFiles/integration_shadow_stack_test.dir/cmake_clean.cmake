file(REMOVE_RECURSE
  "CMakeFiles/integration_shadow_stack_test.dir/integration/shadow_stack_test.cc.o"
  "CMakeFiles/integration_shadow_stack_test.dir/integration/shadow_stack_test.cc.o.d"
  "integration_shadow_stack_test"
  "integration_shadow_stack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_shadow_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
