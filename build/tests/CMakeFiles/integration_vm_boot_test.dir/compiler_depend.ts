# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for integration_vm_boot_test.
