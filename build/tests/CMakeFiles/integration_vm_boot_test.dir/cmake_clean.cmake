file(REMOVE_RECURSE
  "CMakeFiles/integration_vm_boot_test.dir/integration/vm_boot_test.cc.o"
  "CMakeFiles/integration_vm_boot_test.dir/integration/vm_boot_test.cc.o.d"
  "integration_vm_boot_test"
  "integration_vm_boot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_vm_boot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
