# Empty compiler generated dependencies file for integration_vm_boot_test.
# This may be replaced when dependencies are built.
