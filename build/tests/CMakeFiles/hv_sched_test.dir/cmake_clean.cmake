file(REMOVE_RECURSE
  "CMakeFiles/hv_sched_test.dir/hv/sched_test.cc.o"
  "CMakeFiles/hv_sched_test.dir/hv/sched_test.cc.o.d"
  "hv_sched_test"
  "hv_sched_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
