# Empty compiler generated dependencies file for hv_delegate_test.
# This may be replaced when dependencies are built.
