file(REMOVE_RECURSE
  "CMakeFiles/hv_delegate_test.dir/hv/delegate_test.cc.o"
  "CMakeFiles/hv_delegate_test.dir/hv/delegate_test.cc.o.d"
  "hv_delegate_test"
  "hv_delegate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_delegate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
