file(REMOVE_RECURSE
  "CMakeFiles/vmm_emulator_test.dir/vmm/emulator_test.cc.o"
  "CMakeFiles/vmm_emulator_test.dir/vmm/emulator_test.cc.o.d"
  "vmm_emulator_test"
  "vmm_emulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmm_emulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
