# Empty dependencies file for vmm_emulator_test.
# This may be replaced when dependencies are built.
