file(REMOVE_RECURSE
  "CMakeFiles/vmm_vpit_test.dir/vmm/vpit_test.cc.o"
  "CMakeFiles/vmm_vpit_test.dir/vmm/vpit_test.cc.o.d"
  "vmm_vpit_test"
  "vmm_vpit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmm_vpit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
