# Empty dependencies file for vmm_vpit_test.
# This may be replaced when dependencies are built.
