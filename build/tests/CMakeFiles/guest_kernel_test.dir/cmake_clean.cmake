file(REMOVE_RECURSE
  "CMakeFiles/guest_kernel_test.dir/guest/kernel_test.cc.o"
  "CMakeFiles/guest_kernel_test.dir/guest/kernel_test.cc.o.d"
  "guest_kernel_test"
  "guest_kernel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guest_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
