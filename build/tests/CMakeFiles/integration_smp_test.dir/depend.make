# Empty dependencies file for integration_smp_test.
# This may be replaced when dependencies are built.
