file(REMOVE_RECURSE
  "CMakeFiles/integration_smp_test.dir/integration/smp_test.cc.o"
  "CMakeFiles/integration_smp_test.dir/integration/smp_test.cc.o.d"
  "integration_smp_test"
  "integration_smp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_smp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
