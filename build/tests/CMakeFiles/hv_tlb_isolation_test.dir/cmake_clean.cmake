file(REMOVE_RECURSE
  "CMakeFiles/hv_tlb_isolation_test.dir/hv/tlb_isolation_test.cc.o"
  "CMakeFiles/hv_tlb_isolation_test.dir/hv/tlb_isolation_test.cc.o.d"
  "hv_tlb_isolation_test"
  "hv_tlb_isolation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_tlb_isolation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
