# Empty compiler generated dependencies file for hv_tlb_isolation_test.
# This may be replaced when dependencies are built.
