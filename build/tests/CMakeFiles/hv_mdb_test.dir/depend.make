# Empty dependencies file for hv_mdb_test.
# This may be replaced when dependencies are built.
