file(REMOVE_RECURSE
  "CMakeFiles/hv_mdb_test.dir/hv/mdb_test.cc.o"
  "CMakeFiles/hv_mdb_test.dir/hv/mdb_test.cc.o.d"
  "hv_mdb_test"
  "hv_mdb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_mdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
