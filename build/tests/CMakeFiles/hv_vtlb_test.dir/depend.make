# Empty dependencies file for hv_vtlb_test.
# This may be replaced when dependencies are built.
