file(REMOVE_RECURSE
  "CMakeFiles/hv_vtlb_test.dir/hv/vtlb_test.cc.o"
  "CMakeFiles/hv_vtlb_test.dir/hv/vtlb_test.cc.o.d"
  "hv_vtlb_test"
  "hv_vtlb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_vtlb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
