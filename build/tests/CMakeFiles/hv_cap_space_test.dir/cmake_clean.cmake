file(REMOVE_RECURSE
  "CMakeFiles/hv_cap_space_test.dir/hv/cap_space_test.cc.o"
  "CMakeFiles/hv_cap_space_test.dir/hv/cap_space_test.cc.o.d"
  "hv_cap_space_test"
  "hv_cap_space_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_cap_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
