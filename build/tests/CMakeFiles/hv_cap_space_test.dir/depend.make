# Empty dependencies file for hv_cap_space_test.
# This may be replaced when dependencies are built.
