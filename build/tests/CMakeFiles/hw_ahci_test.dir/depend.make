# Empty dependencies file for hw_ahci_test.
# This may be replaced when dependencies are built.
