file(REMOVE_RECURSE
  "CMakeFiles/hw_ahci_test.dir/hw/ahci_test.cc.o"
  "CMakeFiles/hw_ahci_test.dir/hw/ahci_test.cc.o.d"
  "hw_ahci_test"
  "hw_ahci_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_ahci_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
