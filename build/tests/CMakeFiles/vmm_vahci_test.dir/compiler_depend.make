# Empty compiler generated dependencies file for vmm_vahci_test.
# This may be replaced when dependencies are built.
