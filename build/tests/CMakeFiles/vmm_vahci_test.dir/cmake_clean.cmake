file(REMOVE_RECURSE
  "CMakeFiles/vmm_vahci_test.dir/vmm/vahci_test.cc.o"
  "CMakeFiles/vmm_vahci_test.dir/vmm/vahci_test.cc.o.d"
  "vmm_vahci_test"
  "vmm_vahci_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmm_vahci_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
