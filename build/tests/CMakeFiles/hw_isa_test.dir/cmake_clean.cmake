file(REMOVE_RECURSE
  "CMakeFiles/hw_isa_test.dir/hw/isa_test.cc.o"
  "CMakeFiles/hw_isa_test.dir/hw/isa_test.cc.o.d"
  "hw_isa_test"
  "hw_isa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_isa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
