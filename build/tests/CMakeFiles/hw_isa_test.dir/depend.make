# Empty dependencies file for hw_isa_test.
# This may be replaced when dependencies are built.
