file(REMOVE_RECURSE
  "CMakeFiles/hw_property_test.dir/hw/property_test.cc.o"
  "CMakeFiles/hw_property_test.dir/hw/property_test.cc.o.d"
  "hw_property_test"
  "hw_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
