# Empty compiler generated dependencies file for hw_property_test.
# This may be replaced when dependencies are built.
