file(REMOVE_RECURSE
  "CMakeFiles/hw_irq_test.dir/hw/irq_test.cc.o"
  "CMakeFiles/hw_irq_test.dir/hw/irq_test.cc.o.d"
  "hw_irq_test"
  "hw_irq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_irq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
