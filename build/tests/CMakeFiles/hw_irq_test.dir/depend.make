# Empty dependencies file for hw_irq_test.
# This may be replaced when dependencies are built.
