# Empty compiler generated dependencies file for services_disk_server_test.
# This may be replaced when dependencies are built.
