file(REMOVE_RECURSE
  "CMakeFiles/services_disk_server_test.dir/services/disk_server_test.cc.o"
  "CMakeFiles/services_disk_server_test.dir/services/disk_server_test.cc.o.d"
  "services_disk_server_test"
  "services_disk_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/services_disk_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
