file(REMOVE_RECURSE
  "CMakeFiles/hw_engine_test.dir/hw/engine_test.cc.o"
  "CMakeFiles/hw_engine_test.dir/hw/engine_test.cc.o.d"
  "hw_engine_test"
  "hw_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
