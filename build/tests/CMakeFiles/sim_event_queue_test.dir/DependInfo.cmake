
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/event_queue_test.cc" "tests/CMakeFiles/sim_event_queue_test.dir/sim/event_queue_test.cc.o" "gcc" "tests/CMakeFiles/sim_event_queue_test.dir/sim/event_queue_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/guest/CMakeFiles/nova_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/nova_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/nova_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/nova_services.dir/DependInfo.cmake"
  "/root/repo/build/src/root/CMakeFiles/nova_root.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/nova_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/nova_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nova_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
