# Empty compiler generated dependencies file for hv_mtd_transfer_test.
# This may be replaced when dependencies are built.
