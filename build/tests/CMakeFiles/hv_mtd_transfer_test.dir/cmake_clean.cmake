file(REMOVE_RECURSE
  "CMakeFiles/hv_mtd_transfer_test.dir/hv/mtd_transfer_test.cc.o"
  "CMakeFiles/hv_mtd_transfer_test.dir/hv/mtd_transfer_test.cc.o.d"
  "hv_mtd_transfer_test"
  "hv_mtd_transfer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_mtd_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
