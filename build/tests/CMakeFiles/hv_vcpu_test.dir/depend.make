# Empty dependencies file for hv_vcpu_test.
# This may be replaced when dependencies are built.
