file(REMOVE_RECURSE
  "CMakeFiles/hv_vcpu_test.dir/hv/vcpu_test.cc.o"
  "CMakeFiles/hv_vcpu_test.dir/hv/vcpu_test.cc.o.d"
  "hv_vcpu_test"
  "hv_vcpu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_vcpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
