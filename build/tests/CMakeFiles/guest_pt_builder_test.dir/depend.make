# Empty dependencies file for guest_pt_builder_test.
# This may be replaced when dependencies are built.
