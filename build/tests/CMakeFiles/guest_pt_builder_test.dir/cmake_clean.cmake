file(REMOVE_RECURSE
  "CMakeFiles/guest_pt_builder_test.dir/guest/guest_pt_test.cc.o"
  "CMakeFiles/guest_pt_builder_test.dir/guest/guest_pt_test.cc.o.d"
  "guest_pt_builder_test"
  "guest_pt_builder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guest_pt_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
