file(REMOVE_RECURSE
  "CMakeFiles/hw_disk_test.dir/hw/disk_test.cc.o"
  "CMakeFiles/hw_disk_test.dir/hw/disk_test.cc.o.d"
  "hw_disk_test"
  "hw_disk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_disk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
