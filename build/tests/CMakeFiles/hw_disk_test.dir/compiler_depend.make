# Empty compiler generated dependencies file for hw_disk_test.
# This may be replaced when dependencies are built.
