file(REMOVE_RECURSE
  "CMakeFiles/hw_phys_mem_test.dir/hw/phys_mem_test.cc.o"
  "CMakeFiles/hw_phys_mem_test.dir/hw/phys_mem_test.cc.o.d"
  "hw_phys_mem_test"
  "hw_phys_mem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_phys_mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
