# Empty dependencies file for hw_phys_mem_test.
# This may be replaced when dependencies are built.
