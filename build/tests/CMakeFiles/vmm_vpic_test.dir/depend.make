# Empty dependencies file for vmm_vpic_test.
# This may be replaced when dependencies are built.
