file(REMOVE_RECURSE
  "CMakeFiles/vmm_vpic_test.dir/vmm/vpic_test.cc.o"
  "CMakeFiles/vmm_vpic_test.dir/vmm/vpic_test.cc.o.d"
  "vmm_vpic_test"
  "vmm_vpic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmm_vpic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
