# Empty dependencies file for hw_misc_devices_test.
# This may be replaced when dependencies are built.
