file(REMOVE_RECURSE
  "CMakeFiles/hw_misc_devices_test.dir/hw/misc_devices_test.cc.o"
  "CMakeFiles/hw_misc_devices_test.dir/hw/misc_devices_test.cc.o.d"
  "hw_misc_devices_test"
  "hw_misc_devices_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_misc_devices_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
