file(REMOVE_RECURSE
  "CMakeFiles/integration_workloads_test.dir/integration/workloads_test.cc.o"
  "CMakeFiles/integration_workloads_test.dir/integration/workloads_test.cc.o.d"
  "integration_workloads_test"
  "integration_workloads_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_workloads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
