# Empty compiler generated dependencies file for hv_hypercall_errors_test.
# This may be replaced when dependencies are built.
