file(REMOVE_RECURSE
  "CMakeFiles/hv_hypercall_errors_test.dir/hv/hypercall_errors_test.cc.o"
  "CMakeFiles/hv_hypercall_errors_test.dir/hv/hypercall_errors_test.cc.o.d"
  "hv_hypercall_errors_test"
  "hv_hypercall_errors_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hv_hypercall_errors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
