# Empty compiler generated dependencies file for hw_nic_test.
# This may be replaced when dependencies are built.
