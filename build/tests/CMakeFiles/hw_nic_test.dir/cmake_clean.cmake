file(REMOVE_RECURSE
  "CMakeFiles/hw_nic_test.dir/hw/nic_test.cc.o"
  "CMakeFiles/hw_nic_test.dir/hw/nic_test.cc.o.d"
  "hw_nic_test"
  "hw_nic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_nic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
