file(REMOVE_RECURSE
  "CMakeFiles/nova_baseline.dir/tcb_data.cc.o"
  "CMakeFiles/nova_baseline.dir/tcb_data.cc.o.d"
  "libnova_baseline.a"
  "libnova_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
