# Empty compiler generated dependencies file for nova_baseline.
# This may be replaced when dependencies are built.
