file(REMOVE_RECURSE
  "libnova_baseline.a"
)
