# Empty dependencies file for nova_services.
# This may be replaced when dependencies are built.
