file(REMOVE_RECURSE
  "CMakeFiles/nova_services.dir/disk_server.cc.o"
  "CMakeFiles/nova_services.dir/disk_server.cc.o.d"
  "CMakeFiles/nova_services.dir/host_io.cc.o"
  "CMakeFiles/nova_services.dir/host_io.cc.o.d"
  "libnova_services.a"
  "libnova_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
