file(REMOVE_RECURSE
  "libnova_services.a"
)
