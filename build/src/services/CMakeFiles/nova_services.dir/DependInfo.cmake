
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/disk_server.cc" "src/services/CMakeFiles/nova_services.dir/disk_server.cc.o" "gcc" "src/services/CMakeFiles/nova_services.dir/disk_server.cc.o.d"
  "/root/repo/src/services/host_io.cc" "src/services/CMakeFiles/nova_services.dir/host_io.cc.o" "gcc" "src/services/CMakeFiles/nova_services.dir/host_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/root/CMakeFiles/nova_root.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/nova_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/nova_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nova_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
