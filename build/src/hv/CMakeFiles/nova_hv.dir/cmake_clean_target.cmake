file(REMOVE_RECURSE
  "libnova_hv.a"
)
