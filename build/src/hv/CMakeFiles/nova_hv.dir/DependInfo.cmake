
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hv/cap_space.cc" "src/hv/CMakeFiles/nova_hv.dir/cap_space.cc.o" "gcc" "src/hv/CMakeFiles/nova_hv.dir/cap_space.cc.o.d"
  "/root/repo/src/hv/ipc.cc" "src/hv/CMakeFiles/nova_hv.dir/ipc.cc.o" "gcc" "src/hv/CMakeFiles/nova_hv.dir/ipc.cc.o.d"
  "/root/repo/src/hv/kernel.cc" "src/hv/CMakeFiles/nova_hv.dir/kernel.cc.o" "gcc" "src/hv/CMakeFiles/nova_hv.dir/kernel.cc.o.d"
  "/root/repo/src/hv/mdb.cc" "src/hv/CMakeFiles/nova_hv.dir/mdb.cc.o" "gcc" "src/hv/CMakeFiles/nova_hv.dir/mdb.cc.o.d"
  "/root/repo/src/hv/scheduler.cc" "src/hv/CMakeFiles/nova_hv.dir/scheduler.cc.o" "gcc" "src/hv/CMakeFiles/nova_hv.dir/scheduler.cc.o.d"
  "/root/repo/src/hv/spaces.cc" "src/hv/CMakeFiles/nova_hv.dir/spaces.cc.o" "gcc" "src/hv/CMakeFiles/nova_hv.dir/spaces.cc.o.d"
  "/root/repo/src/hv/vcpu.cc" "src/hv/CMakeFiles/nova_hv.dir/vcpu.cc.o" "gcc" "src/hv/CMakeFiles/nova_hv.dir/vcpu.cc.o.d"
  "/root/repo/src/hv/vtlb.cc" "src/hv/CMakeFiles/nova_hv.dir/vtlb.cc.o" "gcc" "src/hv/CMakeFiles/nova_hv.dir/vtlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/nova_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nova_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
