# Empty compiler generated dependencies file for nova_hv.
# This may be replaced when dependencies are built.
