file(REMOVE_RECURSE
  "CMakeFiles/nova_hv.dir/cap_space.cc.o"
  "CMakeFiles/nova_hv.dir/cap_space.cc.o.d"
  "CMakeFiles/nova_hv.dir/ipc.cc.o"
  "CMakeFiles/nova_hv.dir/ipc.cc.o.d"
  "CMakeFiles/nova_hv.dir/kernel.cc.o"
  "CMakeFiles/nova_hv.dir/kernel.cc.o.d"
  "CMakeFiles/nova_hv.dir/mdb.cc.o"
  "CMakeFiles/nova_hv.dir/mdb.cc.o.d"
  "CMakeFiles/nova_hv.dir/scheduler.cc.o"
  "CMakeFiles/nova_hv.dir/scheduler.cc.o.d"
  "CMakeFiles/nova_hv.dir/spaces.cc.o"
  "CMakeFiles/nova_hv.dir/spaces.cc.o.d"
  "CMakeFiles/nova_hv.dir/vcpu.cc.o"
  "CMakeFiles/nova_hv.dir/vcpu.cc.o.d"
  "CMakeFiles/nova_hv.dir/vtlb.cc.o"
  "CMakeFiles/nova_hv.dir/vtlb.cc.o.d"
  "libnova_hv.a"
  "libnova_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
