
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/ahci.cc" "src/hw/CMakeFiles/nova_hw.dir/ahci.cc.o" "gcc" "src/hw/CMakeFiles/nova_hw.dir/ahci.cc.o.d"
  "/root/repo/src/hw/cpu_model.cc" "src/hw/CMakeFiles/nova_hw.dir/cpu_model.cc.o" "gcc" "src/hw/CMakeFiles/nova_hw.dir/cpu_model.cc.o.d"
  "/root/repo/src/hw/device.cc" "src/hw/CMakeFiles/nova_hw.dir/device.cc.o" "gcc" "src/hw/CMakeFiles/nova_hw.dir/device.cc.o.d"
  "/root/repo/src/hw/disk.cc" "src/hw/CMakeFiles/nova_hw.dir/disk.cc.o" "gcc" "src/hw/CMakeFiles/nova_hw.dir/disk.cc.o.d"
  "/root/repo/src/hw/iommu.cc" "src/hw/CMakeFiles/nova_hw.dir/iommu.cc.o" "gcc" "src/hw/CMakeFiles/nova_hw.dir/iommu.cc.o.d"
  "/root/repo/src/hw/irq.cc" "src/hw/CMakeFiles/nova_hw.dir/irq.cc.o" "gcc" "src/hw/CMakeFiles/nova_hw.dir/irq.cc.o.d"
  "/root/repo/src/hw/machine.cc" "src/hw/CMakeFiles/nova_hw.dir/machine.cc.o" "gcc" "src/hw/CMakeFiles/nova_hw.dir/machine.cc.o.d"
  "/root/repo/src/hw/nic.cc" "src/hw/CMakeFiles/nova_hw.dir/nic.cc.o" "gcc" "src/hw/CMakeFiles/nova_hw.dir/nic.cc.o.d"
  "/root/repo/src/hw/paging.cc" "src/hw/CMakeFiles/nova_hw.dir/paging.cc.o" "gcc" "src/hw/CMakeFiles/nova_hw.dir/paging.cc.o.d"
  "/root/repo/src/hw/phys_mem.cc" "src/hw/CMakeFiles/nova_hw.dir/phys_mem.cc.o" "gcc" "src/hw/CMakeFiles/nova_hw.dir/phys_mem.cc.o.d"
  "/root/repo/src/hw/timer_dev.cc" "src/hw/CMakeFiles/nova_hw.dir/timer_dev.cc.o" "gcc" "src/hw/CMakeFiles/nova_hw.dir/timer_dev.cc.o.d"
  "/root/repo/src/hw/tlb.cc" "src/hw/CMakeFiles/nova_hw.dir/tlb.cc.o" "gcc" "src/hw/CMakeFiles/nova_hw.dir/tlb.cc.o.d"
  "/root/repo/src/hw/uart.cc" "src/hw/CMakeFiles/nova_hw.dir/uart.cc.o" "gcc" "src/hw/CMakeFiles/nova_hw.dir/uart.cc.o.d"
  "/root/repo/src/hw/vm_engine.cc" "src/hw/CMakeFiles/nova_hw.dir/vm_engine.cc.o" "gcc" "src/hw/CMakeFiles/nova_hw.dir/vm_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nova_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
