file(REMOVE_RECURSE
  "CMakeFiles/nova_hw.dir/ahci.cc.o"
  "CMakeFiles/nova_hw.dir/ahci.cc.o.d"
  "CMakeFiles/nova_hw.dir/cpu_model.cc.o"
  "CMakeFiles/nova_hw.dir/cpu_model.cc.o.d"
  "CMakeFiles/nova_hw.dir/device.cc.o"
  "CMakeFiles/nova_hw.dir/device.cc.o.d"
  "CMakeFiles/nova_hw.dir/disk.cc.o"
  "CMakeFiles/nova_hw.dir/disk.cc.o.d"
  "CMakeFiles/nova_hw.dir/iommu.cc.o"
  "CMakeFiles/nova_hw.dir/iommu.cc.o.d"
  "CMakeFiles/nova_hw.dir/irq.cc.o"
  "CMakeFiles/nova_hw.dir/irq.cc.o.d"
  "CMakeFiles/nova_hw.dir/machine.cc.o"
  "CMakeFiles/nova_hw.dir/machine.cc.o.d"
  "CMakeFiles/nova_hw.dir/nic.cc.o"
  "CMakeFiles/nova_hw.dir/nic.cc.o.d"
  "CMakeFiles/nova_hw.dir/paging.cc.o"
  "CMakeFiles/nova_hw.dir/paging.cc.o.d"
  "CMakeFiles/nova_hw.dir/phys_mem.cc.o"
  "CMakeFiles/nova_hw.dir/phys_mem.cc.o.d"
  "CMakeFiles/nova_hw.dir/timer_dev.cc.o"
  "CMakeFiles/nova_hw.dir/timer_dev.cc.o.d"
  "CMakeFiles/nova_hw.dir/tlb.cc.o"
  "CMakeFiles/nova_hw.dir/tlb.cc.o.d"
  "CMakeFiles/nova_hw.dir/uart.cc.o"
  "CMakeFiles/nova_hw.dir/uart.cc.o.d"
  "CMakeFiles/nova_hw.dir/vm_engine.cc.o"
  "CMakeFiles/nova_hw.dir/vm_engine.cc.o.d"
  "libnova_hw.a"
  "libnova_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
