# Empty dependencies file for nova_hw.
# This may be replaced when dependencies are built.
