file(REMOVE_RECURSE
  "libnova_hw.a"
)
