file(REMOVE_RECURSE
  "CMakeFiles/nova_vmm.dir/emulator.cc.o"
  "CMakeFiles/nova_vmm.dir/emulator.cc.o.d"
  "CMakeFiles/nova_vmm.dir/vahci.cc.o"
  "CMakeFiles/nova_vmm.dir/vahci.cc.o.d"
  "CMakeFiles/nova_vmm.dir/vmm.cc.o"
  "CMakeFiles/nova_vmm.dir/vmm.cc.o.d"
  "CMakeFiles/nova_vmm.dir/vpic.cc.o"
  "CMakeFiles/nova_vmm.dir/vpic.cc.o.d"
  "CMakeFiles/nova_vmm.dir/vpit.cc.o"
  "CMakeFiles/nova_vmm.dir/vpit.cc.o.d"
  "libnova_vmm.a"
  "libnova_vmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
