# Empty compiler generated dependencies file for nova_vmm.
# This may be replaced when dependencies are built.
