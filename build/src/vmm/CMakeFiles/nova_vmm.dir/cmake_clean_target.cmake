file(REMOVE_RECURSE
  "libnova_vmm.a"
)
