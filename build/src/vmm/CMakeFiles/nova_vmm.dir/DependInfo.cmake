
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vmm/emulator.cc" "src/vmm/CMakeFiles/nova_vmm.dir/emulator.cc.o" "gcc" "src/vmm/CMakeFiles/nova_vmm.dir/emulator.cc.o.d"
  "/root/repo/src/vmm/vahci.cc" "src/vmm/CMakeFiles/nova_vmm.dir/vahci.cc.o" "gcc" "src/vmm/CMakeFiles/nova_vmm.dir/vahci.cc.o.d"
  "/root/repo/src/vmm/vmm.cc" "src/vmm/CMakeFiles/nova_vmm.dir/vmm.cc.o" "gcc" "src/vmm/CMakeFiles/nova_vmm.dir/vmm.cc.o.d"
  "/root/repo/src/vmm/vpic.cc" "src/vmm/CMakeFiles/nova_vmm.dir/vpic.cc.o" "gcc" "src/vmm/CMakeFiles/nova_vmm.dir/vpic.cc.o.d"
  "/root/repo/src/vmm/vpit.cc" "src/vmm/CMakeFiles/nova_vmm.dir/vpit.cc.o" "gcc" "src/vmm/CMakeFiles/nova_vmm.dir/vpit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/services/CMakeFiles/nova_services.dir/DependInfo.cmake"
  "/root/repo/build/src/root/CMakeFiles/nova_root.dir/DependInfo.cmake"
  "/root/repo/build/src/hv/CMakeFiles/nova_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/nova_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nova_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
