# Empty dependencies file for nova_root.
# This may be replaced when dependencies are built.
