file(REMOVE_RECURSE
  "libnova_root.a"
)
