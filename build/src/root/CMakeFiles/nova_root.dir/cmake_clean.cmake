file(REMOVE_RECURSE
  "CMakeFiles/nova_root.dir/platform.cc.o"
  "CMakeFiles/nova_root.dir/platform.cc.o.d"
  "CMakeFiles/nova_root.dir/root_pm.cc.o"
  "CMakeFiles/nova_root.dir/root_pm.cc.o.d"
  "libnova_root.a"
  "libnova_root.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_root.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
