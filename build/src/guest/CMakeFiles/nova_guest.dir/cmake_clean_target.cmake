file(REMOVE_RECURSE
  "libnova_guest.a"
)
