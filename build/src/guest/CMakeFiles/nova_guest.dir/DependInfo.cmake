
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guest/bare_metal.cc" "src/guest/CMakeFiles/nova_guest.dir/bare_metal.cc.o" "gcc" "src/guest/CMakeFiles/nova_guest.dir/bare_metal.cc.o.d"
  "/root/repo/src/guest/driver_ahci.cc" "src/guest/CMakeFiles/nova_guest.dir/driver_ahci.cc.o" "gcc" "src/guest/CMakeFiles/nova_guest.dir/driver_ahci.cc.o.d"
  "/root/repo/src/guest/driver_nic.cc" "src/guest/CMakeFiles/nova_guest.dir/driver_nic.cc.o" "gcc" "src/guest/CMakeFiles/nova_guest.dir/driver_nic.cc.o.d"
  "/root/repo/src/guest/guest_pt.cc" "src/guest/CMakeFiles/nova_guest.dir/guest_pt.cc.o" "gcc" "src/guest/CMakeFiles/nova_guest.dir/guest_pt.cc.o.d"
  "/root/repo/src/guest/kernel.cc" "src/guest/CMakeFiles/nova_guest.dir/kernel.cc.o" "gcc" "src/guest/CMakeFiles/nova_guest.dir/kernel.cc.o.d"
  "/root/repo/src/guest/workload_compile.cc" "src/guest/CMakeFiles/nova_guest.dir/workload_compile.cc.o" "gcc" "src/guest/CMakeFiles/nova_guest.dir/workload_compile.cc.o.d"
  "/root/repo/src/guest/workload_disk.cc" "src/guest/CMakeFiles/nova_guest.dir/workload_disk.cc.o" "gcc" "src/guest/CMakeFiles/nova_guest.dir/workload_disk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/nova_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nova_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
