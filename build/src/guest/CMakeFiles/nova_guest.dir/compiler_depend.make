# Empty compiler generated dependencies file for nova_guest.
# This may be replaced when dependencies are built.
