file(REMOVE_RECURSE
  "CMakeFiles/nova_guest.dir/bare_metal.cc.o"
  "CMakeFiles/nova_guest.dir/bare_metal.cc.o.d"
  "CMakeFiles/nova_guest.dir/driver_ahci.cc.o"
  "CMakeFiles/nova_guest.dir/driver_ahci.cc.o.d"
  "CMakeFiles/nova_guest.dir/driver_nic.cc.o"
  "CMakeFiles/nova_guest.dir/driver_nic.cc.o.d"
  "CMakeFiles/nova_guest.dir/guest_pt.cc.o"
  "CMakeFiles/nova_guest.dir/guest_pt.cc.o.d"
  "CMakeFiles/nova_guest.dir/kernel.cc.o"
  "CMakeFiles/nova_guest.dir/kernel.cc.o.d"
  "CMakeFiles/nova_guest.dir/workload_compile.cc.o"
  "CMakeFiles/nova_guest.dir/workload_compile.cc.o.d"
  "CMakeFiles/nova_guest.dir/workload_disk.cc.o"
  "CMakeFiles/nova_guest.dir/workload_disk.cc.o.d"
  "libnova_guest.a"
  "libnova_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nova_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
