file(REMOVE_RECURSE
  "CMakeFiles/run_guest_vm.dir/run_guest_vm.cpp.o"
  "CMakeFiles/run_guest_vm.dir/run_guest_vm.cpp.o.d"
  "run_guest_vm"
  "run_guest_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_guest_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
