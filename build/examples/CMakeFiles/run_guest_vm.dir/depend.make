# Empty dependencies file for run_guest_vm.
# This may be replaced when dependencies are built.
