file(REMOVE_RECURSE
  "CMakeFiles/vm_isolation_demo.dir/vm_isolation_demo.cpp.o"
  "CMakeFiles/vm_isolation_demo.dir/vm_isolation_demo.cpp.o.d"
  "vm_isolation_demo"
  "vm_isolation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_isolation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
