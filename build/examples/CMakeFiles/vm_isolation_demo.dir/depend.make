# Empty dependencies file for vm_isolation_demo.
# This may be replaced when dependencies are built.
