# Empty compiler generated dependencies file for virtual_appliance.
# This may be replaced when dependencies are built.
