file(REMOVE_RECURSE
  "CMakeFiles/virtual_appliance.dir/virtual_appliance.cpp.o"
  "CMakeFiles/virtual_appliance.dir/virtual_appliance.cpp.o.d"
  "virtual_appliance"
  "virtual_appliance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_appliance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
